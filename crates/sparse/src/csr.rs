//! Compressed Sparse Row (CSR) matrix.

use crate::coo::Coo;
use crate::error::SparseError;

/// A sparse matrix in CSR format.
///
/// CSR is the working format of the CPU baseline (`sparse_dot_topn` uses
/// it) and the canonical source from which [`crate::BsCsr`] is encoded.
/// Row `r` owns entries `row_ptr[r] .. row_ptr[r + 1]` of the `col_idx`
/// and `values` arrays.
///
/// # Example
///
/// ```
/// use tkspmv_sparse::Csr;
///
/// let csr = Csr::from_triplets(2, 4, &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0)])?;
/// let row0: Vec<_> = csr.row(0).collect();
/// assert_eq!(row0, vec![(0, 1.0), (3, 2.0)]);
/// # Ok::<(), tkspmv_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

/// Per-row non-zero statistics, reported by [`Csr::row_stats`] and used
/// to describe the Table III evaluation matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowStats {
    /// Fewest non-zeros in any row.
    pub min_nnz: usize,
    /// Most non-zeros in any row.
    pub max_nnz: usize,
    /// Mean non-zeros per row.
    pub mean_nnz: f64,
    /// Number of rows with zero stored entries.
    pub empty_rows: usize,
}

impl Csr {
    /// Builds a CSR matrix from unsorted triplets (convenience wrapper
    /// over [`Coo::from_triplets`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Coo::from_triplets`].
    pub fn from_triplets(
        num_rows: usize,
        num_cols: usize,
        triplets: &[(u32, u32, f32)],
    ) -> Result<Self, SparseError> {
        Ok(Coo::from_triplets(num_rows, num_cols, triplets)?.to_csr())
    }

    /// Builds a CSR matrix from raw parts, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if `row_ptr` is not a monotone array of length
    /// `num_rows + 1` ending at `col_idx.len()`, if `col_idx` and
    /// `values` lengths differ, or if any column index is out of bounds.
    pub fn from_parts(
        num_rows: usize,
        num_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != num_rows + 1 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "row_ptr length {} != num_rows + 1 = {}",
                    row_ptr.len(),
                    num_rows + 1
                ),
            });
        }
        // invariant: length checked against num_rows + 1 above, so last() exists
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap() != col_idx.len() as u64 {
            return Err(SparseError::MalformedRowPtr {
                detail: "row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedRowPtr {
                detail: "row_ptr must be non-decreasing".to_string(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "col_idx length {} != values length {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        if let Some(&c) = col_idx.iter().find(|&&c| c as usize >= num_cols) {
            return Err(SparseError::IndexOutOfBounds {
                row: 0,
                col: c as usize,
                num_rows,
                num_cols,
            });
        }
        Ok(Self {
            num_rows,
            num_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from parts that are known to be valid (internal fast path
    /// for conversions that construct invariant-respecting arrays).
    pub(crate) fn from_parts_unchecked(
        num_rows: usize,
        num_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), num_rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        Self {
            num_rows,
            num_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`num_rows + 1` entries).
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over the `(col, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rows`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Computes `y[r] = dot(row r, x)` for every row, in `f64` — the
    /// exact reference the approximate engines are scored against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_cols`.
    pub fn spmv_exact(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_cols, "vector length mismatch");
        (0..self.num_rows)
            .map(|r| {
                self.row(r)
                    .map(|(c, v)| v as f64 * x[c as usize] as f64)
                    .sum()
            })
            .collect()
    }

    /// Scales every row to unit L2 norm (rows with zero norm are left
    /// unchanged). Embedding collections are normalised so Top-K dot
    /// products rank by cosine similarity.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.num_rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let norm = self.values[lo..hi]
                .iter()
                .map(|v| (*v as f64) * (*v as f64))
                .sum::<f64>()
                .sqrt();
            if norm > 0.0 {
                for v in &mut self.values[lo..hi] {
                    *v = (*v as f64 / norm) as f32;
                }
            }
        }
    }

    /// Splits the matrix into `parts` row-contiguous partitions of
    /// near-equal row count (the §III-A partitioning scheme). The last
    /// partition absorbs the remainder. Returns `(first_row, submatrix)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or `parts > num_rows` (each core needs at
    /// least one row).
    pub fn partition_rows(&self, parts: usize) -> Vec<(usize, Csr)> {
        assert!(parts > 0, "cannot partition into zero parts");
        assert!(
            parts <= self.num_rows.max(1),
            "more partitions ({parts}) than rows ({})",
            self.num_rows
        );
        let base = self.num_rows / parts;
        let extra = self.num_rows % parts;
        let mut out = Vec::with_capacity(parts);
        let mut row = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + len] as usize;
            let row_ptr: Vec<u64> = self.row_ptr[row..=row + len]
                .iter()
                .map(|&v| v - self.row_ptr[row])
                .collect();
            out.push((
                row,
                Csr::from_parts_unchecked(
                    len,
                    self.num_cols,
                    row_ptr,
                    self.col_idx[lo..hi].to_vec(),
                    self.values[lo..hi].to_vec(),
                ),
            ));
            row += len;
        }
        out
    }

    /// Returns a new matrix with `rows` appended after the existing
    /// ones — the delta-shard fold: a serving tier that accumulated
    /// freshly ingested rows in an append-only side shard compacts them
    /// into the base collection by re-encoding `base.append_rows(delta)`.
    ///
    /// Each row is a `(col_idx, values)` pair whose columns must be
    /// strictly increasing (CSR row order) and in bounds; appended rows
    /// keep their entry order, so the folded matrix scores them with
    /// exactly the arithmetic (`f64` accumulation in column order) an
    /// exact engine used while they were still delta rows.
    ///
    /// # Errors
    ///
    /// [`SparseError::IndexOutOfBounds`] for an out-of-range column,
    /// [`SparseError::DuplicateEntry`] for a repeated or unsorted column
    /// within one appended row, [`SparseError::DimensionTooLarge`] if the
    /// result would exceed `u32` row indexing.
    pub fn append_rows(&self, rows: &[(Vec<u32>, Vec<f32>)]) -> Result<Csr, SparseError> {
        let new_rows = self.num_rows + rows.len();
        if new_rows > u32::MAX as usize {
            return Err(SparseError::DimensionTooLarge {
                detail: format!("{new_rows} rows exceed u32 row indexing"),
            });
        }
        let mut row_ptr = Vec::with_capacity(new_rows + 1);
        row_ptr.extend_from_slice(&self.row_ptr);
        let extra_nnz: usize = rows.iter().map(|(c, _)| c.len()).sum();
        let mut col_idx = Vec::with_capacity(self.col_idx.len() + extra_nnz);
        col_idx.extend_from_slice(&self.col_idx);
        let mut values = Vec::with_capacity(self.values.len() + extra_nnz);
        values.extend_from_slice(&self.values);
        for (r, (cols, vals)) in rows.iter().enumerate() {
            let row = self.num_rows + r;
            if cols.len() != vals.len() {
                return Err(SparseError::MalformedRowPtr {
                    detail: format!(
                        "appended row {row} has {} columns but {} values",
                        cols.len(),
                        vals.len()
                    ),
                });
            }
            for (i, &c) in cols.iter().enumerate() {
                if c as usize >= self.num_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row,
                        col: c as usize,
                        num_rows: new_rows,
                        num_cols: self.num_cols,
                    });
                }
                if i > 0 && cols[i - 1] >= c {
                    return Err(SparseError::DuplicateEntry {
                        row,
                        col: c as usize,
                    });
                }
            }
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len() as u64);
        }
        Ok(Csr::from_parts_unchecked(
            new_rows,
            self.num_cols,
            row_ptr,
            col_idx,
            values,
        ))
    }

    /// Converts to COO (entries already sorted by construction).
    pub fn to_coo(&self) -> Coo {
        let triplets: Vec<(u32, u32, f32)> = (0..self.num_rows)
            .flat_map(|r| self.row(r).map(move |(c, v)| (r as u32, c, v)))
            .collect();
        Coo::from_triplets(self.num_rows, self.num_cols, &triplets)
            // invariant: CSR construction enforces the bounds COO validates
            .expect("CSR invariants guarantee valid COO")
    }

    /// Per-row non-zero statistics.
    pub fn row_stats(&self) -> RowStats {
        let mut min_nnz = usize::MAX;
        let mut max_nnz = 0usize;
        let mut empty = 0usize;
        for r in 0..self.num_rows {
            let n = self.row_nnz(r);
            min_nnz = min_nnz.min(n);
            max_nnz = max_nnz.max(n);
            empty += usize::from(n == 0);
        }
        if self.num_rows == 0 {
            min_nnz = 0;
        }
        RowStats {
            min_nnz,
            max_nnz,
            mean_nnz: self.nnz() as f64 / self.num_rows.max(1) as f64,
            empty_rows: empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_access() {
        let m = sample();
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.row_nnz(3), 2);
    }

    #[test]
    fn from_parts_validates() {
        // Bad length.
        assert!(Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-monotone.
        assert!(Csr::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        // Bad terminator.
        assert!(Csr::from_parts(1, 2, vec![0, 5], vec![0], vec![1.0]).is_err());
        // Column out of range.
        assert!(Csr::from_parts(1, 2, vec![0, 1], vec![7], vec![1.0]).is_err());
        // Mismatched arrays.
        assert!(Csr::from_parts(1, 2, vec![0, 1], vec![0], vec![]).is_err());
        // Valid.
        assert!(Csr::from_parts(1, 2, vec![0, 1], vec![1], vec![2.0]).is_ok());
    }

    #[test]
    fn spmv_exact_reference() {
        let m = sample();
        let y = m.spmv_exact(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 0.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn spmv_checks_vector_length() {
        sample().spmv_exact(&[1.0]);
    }

    #[test]
    fn normalize_rows_gives_unit_norm() {
        let mut m = sample();
        m.normalize_rows();
        for r in [0usize, 1, 3] {
            let norm: f64 = m.row(r).map(|(_, v)| (v as f64).powi(2)).sum();
            assert!((norm - 1.0).abs() < 1e-6, "row {r} norm {norm}");
        }
        // Empty row untouched.
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn partition_rows_covers_all_rows() {
        let m = sample();
        let parts = m.partition_rows(3);
        assert_eq!(parts.len(), 3);
        let total_rows: usize = parts.iter().map(|(_, p)| p.num_rows()).sum();
        assert_eq!(total_rows, 4);
        let total_nnz: usize = parts.iter().map(|(_, p)| p.nnz()).sum();
        assert_eq!(total_nnz, 5);
        // First rows are cumulative.
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].0, 2); // 4 rows / 3 parts -> sizes 2,1,1
        assert_eq!(parts[2].0, 3);
        // Partition content matches source rows.
        assert_eq!(
            parts[2].1.row(0).collect::<Vec<_>>(),
            m.row(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partition_single_part_is_identity() {
        let m = sample();
        let parts = m.partition_rows(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1, m);
    }

    #[test]
    fn append_rows_folds_delta_rows_in_order() {
        let m = sample();
        let delta = vec![
            (vec![1u32, 3], vec![7.0f32, 8.0]),
            (vec![], vec![]),
            (vec![0u32], vec![9.0]),
        ];
        let folded = m.append_rows(&delta).unwrap();
        assert_eq!(folded.num_rows(), 7);
        assert_eq!(folded.num_cols(), 4);
        assert_eq!(folded.nnz(), m.nnz() + 3);
        // Old rows untouched.
        for r in 0..m.num_rows() {
            assert_eq!(
                folded.row(r).collect::<Vec<_>>(),
                m.row(r).collect::<Vec<_>>()
            );
        }
        // New rows in append order, entries in column order.
        assert_eq!(folded.row(4).collect::<Vec<_>>(), vec![(1, 7.0), (3, 8.0)]);
        assert_eq!(folded.row_nnz(5), 0);
        assert_eq!(folded.row(6).collect::<Vec<_>>(), vec![(0, 9.0)]);
        // Scores of folded rows equal a by-hand dot in the same order.
        let y = folded.spmv_exact(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y[4], 7.0 * 2.0 + 8.0 * 4.0);
        assert_eq!(y[6], 9.0);
    }

    #[test]
    fn append_rows_validates_hostile_rows() {
        let m = sample();
        // Out-of-range column.
        assert!(matches!(
            m.append_rows(&[(vec![4], vec![1.0])]),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        // Unsorted and duplicate columns.
        assert!(matches!(
            m.append_rows(&[(vec![2, 1], vec![1.0, 2.0])]),
            Err(SparseError::DuplicateEntry { .. })
        ));
        assert!(matches!(
            m.append_rows(&[(vec![1, 1], vec![1.0, 2.0])]),
            Err(SparseError::DuplicateEntry { .. })
        ));
        // Mismatched lengths.
        assert!(matches!(
            m.append_rows(&[(vec![1], vec![])]),
            Err(SparseError::MalformedRowPtr { .. })
        ));
        // Empty delta is the identity.
        assert_eq!(m.append_rows(&[]).unwrap(), m);
    }

    #[test]
    fn row_stats_report() {
        let s = sample().row_stats();
        assert_eq!(s.min_nnz, 0);
        assert_eq!(s.max_nnz, 2);
        assert_eq!(s.empty_rows, 1);
        assert!((s.mean_nnz - 1.25).abs() < 1e-12);
    }
}
