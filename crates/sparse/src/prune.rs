//! Companion prune index: a compact low-bit, row-major stream for the
//! candidate-generation pass of a staged Top-K query pipeline.
//!
//! The AccelES lineage of the source paper splits a Top-K SpMV query in
//! two: a cheap reduced-precision pass over *all* rows shortlists
//! candidate Top-K rows, then only those rows are recomputed precisely.
//! The [`PruneIndex`] is the first pass's data structure — a CSR-shaped
//! stream quantised to 4 or 8 bits per value ([`PruneBits`]) with 16-bit
//! column indices, built once at prepare time alongside the exact form
//! and persisted as an optional section of the snapshot format:
//!
//! - values are unsigned `Q1.(bits-1)` fixed point (round-to-nearest,
//!   saturating — see [`tkspmv_fixed::Q1_3`] / [`tkspmv_fixed::Q1_7`]),
//!   packed two-per-byte at 4 bits;
//! - the query is quantised once per query to unsigned `Q1.15` (16-bit
//!   raw), so a candidate score is an exact integer sum of
//!   `value_raw * query_raw` products — deterministic and total-ordered,
//!   which the shortlist selection relies on;
//! - per non-zero the pass touches 3 bytes at 8 bits (2.5 at 4 bits)
//!   against the exact CSR's 8, and its integer accumulation
//!   reassociates freely where the exact path's float accumulator
//!   cannot — less traffic *and* more ILP.
//!
//! # Example
//!
//! ```
//! use tkspmv_fixed::PruneBits;
//! use tkspmv_sparse::{Csr, PruneIndex};
//!
//! let csr = Csr::from_triplets(2, 4, &[(0, 1, 0.5), (1, 3, 0.25)])?;
//! let index = PruneIndex::build(&csr, PruneBits::Eight)?;
//! let q = index.quantize_query(&[0.0, 1.0, 0.0, 1.0]);
//! let mut scores = vec![0u64; 2];
//! index.score_rows(0, &q, &mut scores);
//! assert!(scores[0] > scores[1]); // 0.5 * 1.0 beats 0.25 * 1.0
//! # Ok::<(), tkspmv_sparse::SparseError>(())
//! ```

use tkspmv_fixed::{PruneBits, UFixed};

use crate::csr::Csr;
use crate::error::SparseError;

/// Fixed query quantisation width of the prune pass: unsigned `Q1.7`,
/// 8 bits raw. Eight query bits keep every `value_raw * query_raw`
/// product inside 16 bits, and a row holds at most 65536 entries (16-bit
/// column indices, enforced at construction), so per-row integer scores
/// fit 32 bits — which is what lets [`PruneIndex::score_rows`] run as
/// one flat wrapping-prefix stream instead of one short loop per row.
/// The query's quantisation noise sits at or below the matrix stream's
/// own 4/8-bit noise, so candidate ordering is still dominated by the
/// matrix quantisation.
pub type PruneQuery = UFixed<8>;

/// Most entries a single row may hold (`num_cols` can never exceed it,
/// but [`Csr::from_parts`] does not forbid duplicate columns). The bound
/// is what keeps per-row scores inside 32 bits:
/// `65536 * 255 * 255 < 2^32`.
const MAX_ROW_ENTRIES: u64 = 1 << 16;

/// Entries scored per block of the prefix pass: the `u32` prefix buffer
/// is 16 KiB, small enough to stay in L1 across the write/read pair.
const SCORE_BLOCK: usize = 4096;

/// A low-bit, row-major companion index over an embedding collection.
///
/// Shape limits follow from the compact field widths: at most `65536`
/// columns (16-bit indices) and `u32::MAX` non-zeros (32-bit row
/// pointers). Both are far above the paper's workloads (embedding
/// dimension ≤ 1024).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneIndex {
    bits: PruneBits,
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u16>,
    packed: Vec<u8>,
}

impl PruneIndex {
    /// Quantises a collection into a prune index.
    ///
    /// # Errors
    ///
    /// [`SparseError::DimensionTooLarge`] if the matrix has more than
    /// 65536 columns or more than `u32::MAX` non-zeros.
    // alloc-ok(fn): one-time index construction (ingest/compaction),
    // never on the query path.
    pub fn build(csr: &Csr, bits: PruneBits) -> Result<Self, SparseError> {
        if csr.num_cols() > u16::MAX as usize + 1 {
            return Err(SparseError::DimensionTooLarge {
                detail: format!(
                    "prune index addresses columns with 16 bits; matrix has {}",
                    csr.num_cols()
                ),
            });
        }
        if csr.nnz() as u64 > u32::MAX as u64 {
            return Err(SparseError::DimensionTooLarge {
                detail: format!(
                    "prune index row pointers are 32-bit; matrix has {} non-zeros",
                    csr.nnz()
                ),
            });
        }
        if let Some(r) = csr
            .row_ptr()
            .windows(2)
            .position(|w| w[1] - w[0] > MAX_ROW_ENTRIES)
        {
            return Err(SparseError::DimensionTooLarge {
                detail: format!(
                    "prune scores are 32-bit; row {r} holds more than {MAX_ROW_ENTRIES} entries"
                ),
            });
        }
        let row_ptr: Vec<u32> = csr.row_ptr().iter().map(|&p| p as u32).collect();
        let col_idx: Vec<u16> = csr.col_idx().iter().map(|&c| c as u16).collect();
        let values = csr.values();
        let packed = match bits {
            PruneBits::Eight => values.iter().map(|&v| bits.quantize_raw(v)).collect(),
            PruneBits::Four => {
                let mut packed = vec![0u8; values.len().div_ceil(2)];
                for (e, &v) in values.iter().enumerate() {
                    let nibble = bits.quantize_raw(v);
                    packed[e / 2] |= nibble << ((e % 2) as u32 * 4);
                }
                packed
            }
        };
        Ok(Self {
            bits,
            num_rows: csr.num_rows(),
            num_cols: csr.num_cols(),
            row_ptr,
            col_idx,
            packed,
        })
    }

    /// Reassembles an index from its raw arrays (the snapshot read path),
    /// validating every structural invariant.
    ///
    /// # Errors
    ///
    /// [`SparseError::MalformedRowPtr`] or
    /// [`SparseError::IndexOutOfBounds`] if the arrays are inconsistent
    /// with the declared shape, [`SparseError::DimensionTooLarge`] for
    /// shapes the field widths cannot address.
    // alloc-ok(fn): snapshot-load validation with owned-array handoff;
    // error strings allocate only on rejected inputs.
    pub fn from_parts(
        bits: PruneBits,
        num_rows: usize,
        num_cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u16>,
        packed: Vec<u8>,
    ) -> Result<Self, SparseError> {
        if num_cols > u16::MAX as usize + 1 {
            return Err(SparseError::DimensionTooLarge {
                detail: format!("prune index cannot address {num_cols} columns"),
            });
        }
        if row_ptr.len() != num_rows + 1 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "prune row_ptr length {} != num_rows + 1 = {}",
                    row_ptr.len(),
                    num_rows + 1
                ),
            });
        }
        // invariant: length checked against num_rows + 1 above, so last() exists
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap() != col_idx.len() as u32 {
            return Err(SparseError::MalformedRowPtr {
                detail: "prune row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedRowPtr {
                detail: "prune row_ptr must be non-decreasing".to_string(),
            });
        }
        if let Some(r) = row_ptr
            .windows(2)
            .position(|w| (w[1] - w[0]) as u64 > MAX_ROW_ENTRIES)
        {
            return Err(SparseError::DimensionTooLarge {
                detail: format!(
                    "prune scores are 32-bit; row {r} holds more than {MAX_ROW_ENTRIES} entries"
                ),
            });
        }
        if let Some(&c) = col_idx.iter().find(|&&c| c as usize >= num_cols) {
            return Err(SparseError::IndexOutOfBounds {
                row: 0,
                col: c as usize,
                num_rows,
                num_cols,
            });
        }
        let want = match bits {
            PruneBits::Eight => col_idx.len(),
            PruneBits::Four => col_idx.len().div_ceil(2),
        };
        if packed.len() != want {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "prune value stream holds {} bytes, {} entries at {} need {want}",
                    packed.len(),
                    col_idx.len(),
                    bits
                ),
            });
        }
        // At 4 bits an odd entry count leaves one unused high nibble; it
        // must be zero so equal indexes are byte-identical.
        if bits == PruneBits::Four && col_idx.len() % 2 == 1 {
            if let Some(&last) = packed.last() {
                if last >> 4 != 0 {
                    return Err(SparseError::MalformedRowPtr {
                        detail: "prune value stream has a non-zero padding nibble".to_string(),
                    });
                }
            }
        }
        Ok(Self {
            bits,
            num_rows,
            num_cols,
            row_ptr,
            col_idx,
            packed,
        })
    }

    /// Quantisation width of the value stream.
    pub fn bits(&self) -> PruneBits {
        self.bits
    }

    /// Rows covered by the index.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Columns (embedding dimension).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Non-zeros covered by the index.
    pub fn nnz(&self) -> u64 {
        self.col_idx.len() as u64
    }

    /// Row pointers (entry offsets, length `num_rows + 1`).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column indices, row-major.
    pub fn col_idx(&self) -> &[u16] {
        &self.col_idx
    }

    /// The packed value stream (one byte per entry at 8 bits, two
    /// entries per byte at 4, low nibble first).
    pub fn packed(&self) -> &[u8] {
        &self.packed
    }

    /// Bytes the value stream occupies — the bandwidth saving over the
    /// exact representation, for reporting.
    pub fn value_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Raw quantised value of entry `e` (row-major entry index).
    pub fn value_raw(&self, e: usize) -> u8 {
        match self.bits {
            PruneBits::Eight => self.packed[e],
            PruneBits::Four => (self.packed[e / 2] >> ((e % 2) as u32 * 4)) & 0xF,
        }
    }

    /// Quantises a query vector to the fixed `Q1.7` raw grid of the
    /// prune pass (round-to-nearest, saturating, NaN/negative to zero).
    // alloc-ok(fn): per-query setup producing the reusable quantised
    // vector; the per-row scoring loop is `score_rows`.
    pub fn quantize_query(&self, x: &[f32]) -> Vec<u16> {
        x.iter()
            .map(|&v| PruneQuery::from_f64(v as f64).raw() as u16)
            .collect()
    }

    /// Scores `out.len()` consecutive rows starting at `first_row`
    /// against a quantised query, writing one integer score per row.
    ///
    /// Scores are exact sums of `value_raw * query_raw` products, with
    /// query values saturated to [`PruneQuery::RAW_MAX`] (the grid
    /// [`Self::quantize_query`] already produces). Equal inputs give
    /// equal scores on every platform — the shortlist cut is
    /// deterministic.
    ///
    /// The pass runs as one flat wrapping-prefix stream over the entry
    /// range in L1-sized blocks, then takes per-row differences. Short
    /// rows would otherwise pay a loop setup and an exit mispredict
    /// each — measured ~4x the cost of streaming the same entries
    /// through a single loop. The `u32` prefix differences are exact
    /// because every per-row sum fits 32 bits: products fit 16 bits and
    /// rows hold at most 65536 entries (enforced at construction).
    ///
    /// # Panics
    ///
    /// Panics if the row range runs past the index or `q` is shorter
    /// than the column count.
    pub fn score_rows(&self, first_row: usize, q: &[u16], out: &mut [u64]) {
        assert!(first_row + out.len() <= self.num_rows, "row range overruns");
        assert!(q.len() >= self.num_cols, "query shorter than columns");
        // The 32-bit overflow argument needs query values capped at
        // RAW_MAX for any caller, not just `quantize_query`'s output.
        // An O(cols) pre-scan picks the lookup: in-grid queries (the
        // overwhelmingly common case) index the slice directly, an
        // out-of-grid query pays a per-access saturation. Either way
        // the call never allocates — this is the warm prune pass, held
        // to zero allocations by tests/zero_alloc.rs and the alloc lint.
        let q = &q[..self.num_cols];
        if q.iter().all(|&v| u32::from(v) <= PruneQuery::RAW_MAX) {
            self.score_rows_stream(first_row, out, |c| u32::from(q[c as usize]));
        } else {
            self.score_rows_stream(first_row, out, |c| {
                u32::from(q[c as usize]).min(PruneQuery::RAW_MAX)
            });
        }
    }

    /// The streaming scoring loop behind [`Self::score_rows`],
    /// monomorphised over the query-value lookup.
    fn score_rows_stream<F: Fn(u16) -> u32>(&self, first_row: usize, out: &mut [u64], qv: F) {
        let lo = self.row_ptr[first_row] as usize;
        let hi = self.row_ptr[first_row + out.len()] as usize;
        let mut buf = [0u32; SCORE_BLOCK + 1];
        let mut base = 0u32; // wrapping prefix at the current block start
        let mut last_p = 0u32; // wrapping prefix at the current row start
        let mut r = 0usize; // rows of `out` already written
        let mut start = lo;
        while start < hi {
            let end = (start + SCORE_BLOCK).min(hi);
            let blen = end - start;
            let mut acc = 0u32;
            match self.bits {
                PruneBits::Eight => {
                    for ((p, &v), &c) in buf[1..=blen]
                        .iter_mut()
                        .zip(&self.packed[start..end])
                        .zip(&self.col_idx[start..end])
                    {
                        acc = acc.wrapping_add(v as u32 * qv(c));
                        *p = acc;
                    }
                }
                PruneBits::Four => {
                    for (i, (p, &c)) in buf[1..=blen]
                        .iter_mut()
                        .zip(&self.col_idx[start..end])
                        .enumerate()
                    {
                        let e = start + i;
                        let nibble = (self.packed[e / 2] >> ((e % 2) as u32 * 4)) & 0xF;
                        acc = acc.wrapping_add(nibble as u32 * qv(c));
                        *p = acc;
                    }
                }
            }
            while r < out.len() && self.row_ptr[first_row + r + 1] as usize <= end {
                let p_hi = base.wrapping_add(buf[self.row_ptr[first_row + r + 1] as usize - start]);
                out[r] = p_hi.wrapping_sub(last_p) as u64;
                last_p = p_hi;
                r += 1;
            }
            base = base.wrapping_add(acc);
            start = end;
        }
        // Rows past the last entry of the range are empty.
        for slot in &mut out[r..] {
            *slot = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{NnzDistribution, SyntheticConfig};

    fn sample() -> Csr {
        SyntheticConfig {
            num_rows: 64,
            num_cols: 48,
            avg_nnz_per_row: 6,
            distribution: NnzDistribution::table3_gamma(),
            seed: 17,
        }
        .generate()
    }

    #[test]
    fn build_matches_per_entry_quantisation() {
        let csr = sample();
        for bits in PruneBits::ALL {
            let index = PruneIndex::build(&csr, bits).unwrap();
            assert_eq!(index.num_rows(), csr.num_rows());
            assert_eq!(index.num_cols(), csr.num_cols());
            assert_eq!(index.nnz(), csr.nnz() as u64);
            for (e, &v) in csr.values().iter().enumerate() {
                assert_eq!(index.value_raw(e), bits.quantize_raw(v), "entry {e}");
            }
        }
    }

    #[test]
    fn four_bit_stream_is_half_the_bytes() {
        let csr = sample();
        let i4 = PruneIndex::build(&csr, PruneBits::Four).unwrap();
        let i8 = PruneIndex::build(&csr, PruneBits::Eight).unwrap();
        assert_eq!(i8.value_bytes(), csr.nnz());
        assert_eq!(i4.value_bytes(), csr.nnz().div_ceil(2));
    }

    #[test]
    fn scores_equal_integer_reference() {
        let csr = sample();
        let x: Vec<f32> = (0..csr.num_cols())
            .map(|c| (c % 10) as f32 / 10.0)
            .collect();
        for bits in PruneBits::ALL {
            let index = PruneIndex::build(&csr, bits).unwrap();
            let q = index.quantize_query(&x);
            let mut scores = vec![0u64; csr.num_rows()];
            index.score_rows(0, &q, &mut scores);
            // Range-wise scoring agrees with the full pass.
            let mut tail = vec![0u64; csr.num_rows() - 10];
            index.score_rows(10, &q, &mut tail);
            assert_eq!(&scores[10..], tail.as_slice());
            for (r, &got) in scores.iter().enumerate() {
                let want: u64 = csr
                    .row(r)
                    .enumerate()
                    .map(|(j, (c, _))| {
                        let e = csr.row_ptr()[r] as usize + j;
                        index.value_raw(e) as u64 * q[c as usize] as u64
                    })
                    .sum();
                assert_eq!(got, want, "row {r}");
            }
        }
    }

    #[test]
    fn shape_limits_are_typed() {
        let wide = Csr::from_triplets(1, 70_000, &[(0, 69_999, 0.5)]).unwrap();
        assert!(matches!(
            PruneIndex::build(&wide, PruneBits::Eight),
            Err(SparseError::DimensionTooLarge { .. })
        ));
    }

    #[test]
    fn from_parts_validates() {
        let csr = sample();
        let ok = PruneIndex::build(&csr, PruneBits::Four).unwrap();
        let back = PruneIndex::from_parts(
            ok.bits(),
            ok.num_rows(),
            ok.num_cols(),
            ok.row_ptr().to_vec(),
            ok.col_idx().to_vec(),
            ok.packed().to_vec(),
        )
        .unwrap();
        assert_eq!(back, ok);
        // Wrong stream length.
        assert!(PruneIndex::from_parts(
            PruneBits::Eight,
            ok.num_rows(),
            ok.num_cols(),
            ok.row_ptr().to_vec(),
            ok.col_idx().to_vec(),
            ok.packed().to_vec(), // half the bytes 8-bit needs
        )
        .is_err());
        // Out-of-range column.
        let mut cols = ok.col_idx().to_vec();
        cols[0] = ok.num_cols() as u16;
        assert!(PruneIndex::from_parts(
            ok.bits(),
            ok.num_rows(),
            ok.num_cols(),
            ok.row_ptr().to_vec(),
            cols,
            ok.packed().to_vec(),
        )
        .is_err());
        // Broken row pointers.
        let mut ptr = ok.row_ptr().to_vec();
        ptr[1] = ptr[2] + 1;
        assert!(PruneIndex::from_parts(
            ok.bits(),
            ok.num_rows(),
            ok.num_cols(),
            ptr,
            ok.col_idx().to_vec(),
            ok.packed().to_vec(),
        )
        .is_err());
    }

    #[test]
    fn odd_entry_count_padding_nibble_must_be_zero() {
        let csr = Csr::from_triplets(1, 4, &[(0, 0, 0.5), (0, 1, 0.5), (0, 2, 0.5)]).unwrap();
        let ok = PruneIndex::build(&csr, PruneBits::Four).unwrap();
        let mut packed = ok.packed().to_vec();
        *packed.last_mut().unwrap() |= 0xF0;
        assert!(PruneIndex::from_parts(
            ok.bits(),
            ok.num_rows(),
            ok.num_cols(),
            ok.row_ptr().to_vec(),
            ok.col_idx().to_vec(),
            packed,
        )
        .is_err());
    }
}
