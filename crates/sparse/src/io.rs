//! MatrixMarket (`.mtx`) import/export.
//!
//! Real sparse-embedding collections are commonly exchanged as
//! MatrixMarket coordinate files; this module reads and writes the
//! `matrix coordinate real general` subset (plus `pattern` files, whose
//! entries get value 1.0), so the accelerator can run on external data
//! instead of the synthetic generators.

use std::io::{BufRead, BufReader, Read, Write};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;

/// Error raised while parsing a MatrixMarket stream.
#[derive(Debug)]
pub enum ReadMtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header or an entry line is malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The entries violate matrix invariants (bounds, duplicates).
    Matrix(SparseError),
}

impl std::fmt::Display for ReadMtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadMtxError::Io(e) => write!(f, "i/o error: {e}"),
            ReadMtxError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            ReadMtxError::Matrix(e) => write!(f, "invalid matrix: {e}"),
        }
    }
}

impl std::error::Error for ReadMtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadMtxError::Io(e) => Some(e),
            ReadMtxError::Matrix(e) => Some(e),
            ReadMtxError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadMtxError {
    fn from(e: std::io::Error) -> Self {
        ReadMtxError::Io(e)
    }
}

impl From<SparseError> for ReadMtxError {
    fn from(e: SparseError) -> Self {
        ReadMtxError::Matrix(e)
    }
}

/// Reads a `matrix coordinate real|integer|pattern general` MatrixMarket
/// stream into a CSR matrix.
///
/// A `&mut` reference can be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`ReadMtxError`] on I/O failure, malformed input, or
/// out-of-bounds/duplicate entries.
///
/// # Example
///
/// ```
/// use tkspmv_sparse::io::read_mtx;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n2 3 2\n1 1 0.5\n2 3 0.25\n";
/// let csr = read_mtx(text.as_bytes())?;
/// assert_eq!(csr.num_rows(), 2);
/// assert_eq!(csr.nnz(), 2);
/// # Ok::<(), tkspmv_sparse::io::ReadMtxError>(())
/// ```
pub fn read_mtx<R: Read>(reader: R) -> Result<Csr, ReadMtxError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line.
    let (line_no, header) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(ReadMtxError::Parse {
                    line: 0,
                    detail: "empty stream".to_string(),
                })
            }
        }
    };
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(ReadMtxError::Parse {
            line: line_no,
            detail: format!("not a MatrixMarket header: `{header}`"),
        });
    }
    if fields[2] != "coordinate" {
        return Err(ReadMtxError::Parse {
            line: line_no,
            detail: "only `coordinate` format is supported".to_string(),
        });
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "real" | "integer" | "pattern") {
        return Err(ReadMtxError::Parse {
            line: line_no,
            detail: format!("unsupported value type `{value_kind}`"),
        });
    }
    if fields.get(4).is_some_and(|s| *s != "general") {
        return Err(ReadMtxError::Parse {
            line: line_no,
            detail: "only `general` symmetry is supported".to_string(),
        });
    }

    // Size line: rows cols nnz (skipping % comments).
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (n + 1, line);
                }
            }
            None => {
                return Err(ReadMtxError::Parse {
                    line: line_no,
                    detail: "missing size line".to_string(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| ReadMtxError::Parse {
            line: size_line_no,
            detail: format!("bad size line: {e}"),
        })?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(ReadMtxError::Parse {
            line: size_line_no,
            detail: format!("size line needs `rows cols nnz`, got {} fields", dims.len()),
        });
    };
    // A hostile header must produce a typed error, never wrap, panic, or
    // force a huge allocation: the shape has to be u32-indexable (entries
    // are 1-based u32 coordinates) and `nnz` cannot exceed the number of
    // cells the shape holds (the product is overflow-checked).
    if rows > u32::MAX as usize || cols > u32::MAX as usize {
        return Err(SparseError::DimensionTooLarge {
            detail: format!("shape {rows}x{cols} exceeds u32 coordinates"),
        }
        .into());
    }
    let cells = (rows as u64)
        .checked_mul(cols as u64)
        .ok_or(SparseError::DimensionTooLarge {
            detail: format!("shape {rows}x{cols} has an uncountable number of cells"),
        })?;
    if nnz as u64 > cells {
        return Err(SparseError::TooManyNonZeros {
            nnz: nnz as u64,
            capacity: cells,
        }
        .into());
    }

    // The capacity reservation is capped: the real size is enforced by
    // the entry-count check below, and a lying header must not be able
    // to abort the process through an oversized allocation.
    let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(nnz.min(1 << 20));
    for (n, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_coord = |tok: Option<&str>, what: &str| -> Result<u64, ReadMtxError> {
            tok.ok_or_else(|| ReadMtxError::Parse {
                line: n + 1,
                detail: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| ReadMtxError::Parse {
                line: n + 1,
                detail: format!("bad {what}: {e}"),
            })
        };
        let r = parse_coord(it.next(), "row index")?;
        let c = parse_coord(it.next(), "column index")?;
        if r == 0 || c == 0 {
            return Err(ReadMtxError::Parse {
                line: n + 1,
                detail: "MatrixMarket indices are 1-based".to_string(),
            });
        }
        // Coordinates are parsed as u64 so an absurd index is a typed
        // bounds error against the declared shape, not a lexer failure
        // (and `- 1` below can never wrap).
        if r > rows as u64 || c > cols as u64 {
            return Err(SparseError::IndexOutOfBounds {
                row: (r - 1) as usize,
                col: (c - 1) as usize,
                num_rows: rows,
                num_cols: cols,
            }
            .into());
        }
        let v = if value_kind == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| ReadMtxError::Parse {
                    line: n + 1,
                    detail: "missing value".to_string(),
                })?
                .parse::<f32>()
                .map_err(|e| ReadMtxError::Parse {
                    line: n + 1,
                    detail: format!("bad value: {e}"),
                })?
        };
        triplets.push(((r - 1) as u32, (c - 1) as u32, v));
    }
    if triplets.len() != nnz {
        return Err(ReadMtxError::Parse {
            line: size_line_no,
            detail: format!("size line promised {nnz} entries, found {}", triplets.len()),
        });
    }
    Ok(Coo::from_triplets(rows, cols, &triplets)?.to_csr())
}

/// Writes a CSR matrix as `matrix coordinate real general`.
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_mtx<W: Write>(mut writer: W, csr: &Csr) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by tkspmv")?;
    writeln!(
        writer,
        "{} {} {}",
        csr.num_rows(),
        csr.num_cols(),
        csr.nnz()
    )?;
    for r in 0..csr.num_rows() {
        for (c, v) in csr.row(r) {
            writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
%%MatrixMarket matrix coordinate real general
% a comment
3 4 4
1 2 0.5
1 4 0.25
2 1 1.0
3 3 0.75
";

    #[test]
    fn reads_real_general() {
        let csr = read_mtx(SAMPLE.as_bytes()).unwrap();
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_cols(), 4);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(1, 0.5), (3, 0.25)]);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let csr = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(csr.values(), &[1.0, 1.0]);
    }

    #[test]
    fn round_trip_through_writer() {
        let csr = read_mtx(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_mtx(&mut buf, &csr).unwrap();
        let back = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(csr, back);
    }

    #[test]
    fn rejects_malformed_inputs() {
        // Wrong banner.
        assert!(read_mtx("hello\n1 1 0\n".as_bytes()).is_err());
        // Unsupported format.
        assert!(
            read_mtx("%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()).is_err()
        );
        // Symmetric not supported.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real symmetric\n1 1 1\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // 0-based index.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 0.5\n".as_bytes()
        )
        .is_err());
        // Entry count mismatch.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.5\n".as_bytes()
        )
        .is_err());
        // Out of bounds.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 0.5\n".as_bytes()
        )
        .is_err());
        // Empty stream.
        assert!(read_mtx("".as_bytes()).is_err());
    }

    #[test]
    fn hostile_headers_fail_typed_without_wrapping_or_allocating() {
        // Shape beyond u32 coordinates.
        let huge_dim = format!(
            "%%MatrixMarket matrix coordinate real general\n{} 2 1\n1 1 0.5\n",
            u32::MAX as u64 + 1
        );
        assert!(matches!(
            read_mtx(huge_dim.as_bytes()),
            Err(ReadMtxError::Matrix(SparseError::DimensionTooLarge { .. }))
        ));
        // nnz that cannot fit the declared shape (and, were it trusted,
        // would pre-allocate terabytes).
        let lying_nnz =
            "%%MatrixMarket matrix coordinate real general\n2 2 18446744073709551615\n1 1 0.5\n";
        assert!(matches!(
            read_mtx(lying_nnz.as_bytes()),
            Err(ReadMtxError::Matrix(SparseError::TooManyNonZeros { .. }))
        ));
        let overfull = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 0.5\n";
        assert!(matches!(
            read_mtx(overfull.as_bytes()),
            Err(ReadMtxError::Matrix(SparseError::TooManyNonZeros { .. }))
        ));
        // An entry index far past u32 must be a typed bounds error, not a
        // lexer failure or a wrapped coordinate.
        let huge_index = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5000000000 0.5\n";
        match read_mtx(huge_index.as_bytes()) {
            Err(ReadMtxError::Matrix(SparseError::IndexOutOfBounds { col, .. })) => {
                assert_eq!(col, 4_999_999_999);
            }
            other => panic!("expected IndexOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn error_display_carries_line_numbers() {
        let err =
            read_mtx("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 0.5\n".as_bytes())
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "\n%%MatrixMarket matrix coordinate real general\n% c1\n\n2 2 1\n% c2\n1 1 0.5\n";
        let csr = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 1);
    }
}
