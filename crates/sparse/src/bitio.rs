//! Bit-granular field access inside a 512-bit packet.
//!
//! BS-CSR fields are not byte-aligned (e.g. 4-bit `ptr`, 10-bit `idx`,
//! 20-bit `val`), so the codec needs an LSB-first bit cursor over the
//! packet words, equivalent to HLS `ap_uint<512>.range(hi, lo)` slices.

use crate::packet::{Packet512, PACKET_BITS};

/// Sequential LSB-first bit writer over a [`Packet512`].
///
/// # Example
///
/// ```
/// use tkspmv_sparse::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0x3FF, 10);
/// let packet = w.finish();
///
/// let mut r = BitReader::new(&packet);
/// assert_eq!(r.read(3), 0b101);
/// assert_eq!(r.read(10), 0x3FF);
/// ```
#[derive(Debug, Clone)]
pub struct BitWriter {
    packet: Packet512,
    pos: usize,
}

impl BitWriter {
    /// Creates a writer positioned at bit 0 of an all-zero packet.
    pub fn new() -> Self {
        Self {
            packet: Packet512::ZERO,
            pos: 0,
        }
    }

    /// Appends the low `bits` bits of `value` at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`, if `value` has bits set above `bits`, or if
    /// the write would overflow the 512-bit packet.
    pub fn write(&mut self, value: u64, bits: u32) {
        assert!(bits <= 64, "cannot write more than 64 bits at once");
        assert!(
            bits == 64 || value < (1u64 << bits),
            "value {value:#x} does not fit in {bits} bits"
        );
        assert!(
            self.pos + bits as usize <= PACKET_BITS,
            "write of {bits} bits at position {} overflows the packet",
            self.pos
        );
        let mut remaining = bits;
        let mut value = value;
        while remaining > 0 {
            let word = self.pos / 64;
            let offset = (self.pos % 64) as u32;
            let take = remaining.min(64 - offset);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            self.packet.words_mut()[word] |= (value & mask) << offset;
            value = if take == 64 { 0 } else { value >> take };
            self.pos += take as usize;
            remaining -= take;
        }
    }

    /// Current bit position (number of bits written).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns the packet; any unwritten tail bits are zero.
    pub fn finish(self) -> Packet512 {
        self.packet
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequential LSB-first bit reader over a [`Packet512`].
///
/// See [`BitWriter`] for the matching write side.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    packet: &'a Packet512,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0.
    pub fn new(packet: &'a Packet512) -> Self {
        Self { packet, pos: 0 }
    }

    /// Reads `bits` bits at the cursor and advances.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64` or the read would run past bit 512.
    pub fn read(&mut self, bits: u32) -> u64 {
        assert!(bits <= 64, "cannot read more than 64 bits at once");
        assert!(
            self.pos + bits as usize <= PACKET_BITS,
            "read of {bits} bits at position {} overflows the packet",
            self.pos
        );
        let mut out = 0u64;
        let mut got = 0u32;
        while got < bits {
            let word = self.pos / 64;
            let offset = (self.pos % 64) as u32;
            let take = (bits - got).min(64 - offset);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let chunk = (self.packet.words()[word] >> offset) & mask;
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        out
    }

    /// Skips `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if skipping would run past bit 512.
    pub fn skip(&mut self, bits: u32) {
        assert!(self.pos + bits as usize <= PACKET_BITS);
        self.pos += bits as usize;
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_field_round_trip() {
        let mut w = BitWriter::new();
        w.write(0xDEAD, 16);
        let p = w.finish();
        assert_eq!(BitReader::new(&p).read(16), 0xDEAD);
    }

    #[test]
    fn fields_cross_word_boundaries() {
        let mut w = BitWriter::new();
        w.write(0, 60); // push the cursor near a word boundary
        w.write(0xABCDE, 20); // spans words 0 and 1
        let p = w.finish();
        let mut r = BitReader::new(&p);
        r.skip(60);
        assert_eq!(r.read(20), 0xABCDE);
    }

    #[test]
    fn full_packet_of_mixed_fields_round_trips() {
        // Simulate the paper's 20-bit layout: 1 + 15*(4+10+20) = 511 bits.
        let mut w = BitWriter::new();
        w.write(1, 1);
        for i in 0..15u64 {
            w.write(i & 0xF, 4);
        }
        for i in 0..15u64 {
            w.write((i * 37) & 0x3FF, 10);
        }
        for i in 0..15u64 {
            w.write((i * 77777) & 0xFFFFF, 20);
        }
        assert_eq!(w.position(), 511);
        let p = w.finish();

        let mut r = BitReader::new(&p);
        assert_eq!(r.read(1), 1);
        for i in 0..15u64 {
            assert_eq!(r.read(4), i & 0xF);
        }
        for i in 0..15u64 {
            assert_eq!(r.read(10), (i * 37) & 0x3FF);
        }
        for i in 0..15u64 {
            assert_eq!(r.read(20), (i * 77777) & 0xFFFFF);
        }
    }

    #[test]
    fn write_64_bit_field() {
        let mut w = BitWriter::new();
        w.write(3, 2);
        w.write(u64::MAX, 64);
        let p = w.finish();
        let mut r = BitReader::new(&p);
        assert_eq!(r.read(2), 3);
        assert_eq!(r.read(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_is_rejected() {
        BitWriter::new().write(0x10, 4);
    }

    #[test]
    #[should_panic(expected = "overflows the packet")]
    fn overflowing_write_is_rejected() {
        let mut w = BitWriter::new();
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 64);
        w.write(0, 63);
        w.write(0, 2); // 513th bit
    }
}
