//! Solving the BS-CSR packet capacity equation of §IV-C.

use crate::error::SparseError;
use crate::packet::PACKET_BITS;

/// Bit-level layout of one BS-CSR packet.
///
/// §IV-C of the paper gives the capacity constraint
///
/// ```text
/// B * (ptr_bits + idx_bits + value_bits) + 1 <= 512
/// ```
///
/// where `B` is the number of non-zeros per packet, `ptr_bits =
/// ceil(log2(B + 1))` (a packet-local cumulative count in `0..=B`),
/// `idx_bits = ceil(log2(M))` indexes the dense vector, `value_bits = V`
/// is the numeric precision, and the `+ 1` is the `new_row` carry bit.
/// [`PacketLayout::solve`] finds the largest feasible `B`.
///
/// With `M = 1024`, `V = 20` this yields the paper's headline `B = 15`
/// (`1 + 15 * (4 + 10 + 20) = 511` bits).
///
/// # Example
///
/// ```
/// use tkspmv_sparse::PacketLayout;
///
/// let layout = PacketLayout::solve(1024, 20)?;
/// assert_eq!(layout.entries_per_packet(), 15);
/// assert_eq!(layout.bits_used(), 511);
/// # Ok::<(), tkspmv_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketLayout {
    entries_per_packet: u32,
    ptr_bits: u32,
    idx_bits: u32,
    value_bits: u32,
}

impl PacketLayout {
    /// Finds the layout with the largest `B` for a matrix with `num_cols`
    /// columns and `value_bits`-wide values.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LayoutUnsatisfiable`] if even `B = 1` does
    /// not fit, and [`SparseError::DimensionTooLarge`] if `num_cols`
    /// cannot be indexed within the packet at all.
    pub fn solve(num_cols: usize, value_bits: u32) -> Result<Self, SparseError> {
        assert!(
            (1..=64).contains(&value_bits),
            "value_bits must be in 1..=64, got {value_bits}"
        );
        if num_cols == 0 {
            return Err(SparseError::DimensionTooLarge {
                detail: "matrix must have at least one column".to_string(),
            });
        }
        let idx_bits = bits_for(num_cols.saturating_sub(1).max(1) as u64);
        let mut best: Option<(u32, u32)> = None;
        for b in 1..=PACKET_BITS as u32 {
            let ptr_bits = bits_for(b as u64);
            let total = b as usize * (ptr_bits + idx_bits + value_bits) as usize + 1;
            if total <= PACKET_BITS {
                best = Some((b, ptr_bits));
            } else if best.is_some() {
                break;
            }
        }
        match best {
            Some((entries_per_packet, ptr_bits)) => Ok(Self {
                entries_per_packet,
                ptr_bits,
                idx_bits,
                value_bits,
            }),
            None => Err(SparseError::LayoutUnsatisfiable {
                idx_bits,
                value_bits,
            }),
        }
    }

    /// Builds a layout with an explicit `B` (for studying sub-maximal
    /// packings like the naive COO `B = 5` point in Figure 6a).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LayoutUnsatisfiable`] if the requested `B`
    /// does not fit in a packet.
    pub fn with_entries(
        num_cols: usize,
        value_bits: u32,
        entries_per_packet: u32,
    ) -> Result<Self, SparseError> {
        let max = Self::solve(num_cols, value_bits)?;
        if entries_per_packet == 0 || entries_per_packet > max.entries_per_packet {
            return Err(SparseError::LayoutUnsatisfiable {
                idx_bits: max.idx_bits,
                value_bits,
            });
        }
        Ok(Self {
            entries_per_packet,
            ptr_bits: bits_for(entries_per_packet as u64),
            idx_bits: max.idx_bits,
            value_bits,
        })
    }

    /// Reconstructs a layout from its raw field widths (e.g. read back
    /// from a persisted snapshot), revalidating every invariant the
    /// solver guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LayoutUnsatisfiable`] if the fields do not
    /// describe a legal packet: `B = 0`, widths outside `1..=64`,
    /// `ptr_bits != ceil(log2(B + 1))`, or fields overflowing 512 bits.
    pub fn from_parts(
        entries_per_packet: u32,
        ptr_bits: u32,
        idx_bits: u32,
        value_bits: u32,
    ) -> Result<Self, SparseError> {
        let well_formed = entries_per_packet >= 1
            && (1..=64).contains(&ptr_bits)
            && (1..=64).contains(&idx_bits)
            && (1..=64).contains(&value_bits)
            && ptr_bits == bits_for(entries_per_packet as u64);
        let layout = Self {
            entries_per_packet,
            ptr_bits,
            idx_bits,
            value_bits,
        };
        if !well_formed || layout.bits_used() as usize > PACKET_BITS {
            return Err(SparseError::LayoutUnsatisfiable {
                idx_bits,
                value_bits,
            });
        }
        Ok(layout)
    }

    /// `B`: non-zero entries per 512-bit packet.
    pub fn entries_per_packet(self) -> u32 {
        self.entries_per_packet
    }

    /// Width of one packet-local cumulative `ptr` entry.
    pub fn ptr_bits(self) -> u32 {
        self.ptr_bits
    }

    /// Width of one column index.
    pub fn idx_bits(self) -> u32 {
        self.idx_bits
    }

    /// Width of one value (`V`).
    pub fn value_bits(self) -> u32 {
        self.value_bits
    }

    /// Total bits used by the fields (`<= 512`); the remainder is padding.
    pub fn bits_used(self) -> u32 {
        self.entries_per_packet * (self.ptr_bits + self.idx_bits + self.value_bits) + 1
    }

    /// Number of packets required to store `nnz` entries.
    pub fn packets_for(self, nnz: u64) -> u64 {
        nnz.div_ceil(self.entries_per_packet as u64)
    }

    /// Bytes of HBM traffic to stream `nnz` entries (whole packets).
    pub fn bytes_for(self, nnz: u64) -> u64 {
        self.packets_for(nnz) * crate::packet::PACKET_BYTES as u64
    }

    /// Operational intensity in non-zeros per byte: the figure of merit
    /// the roofline analysis (Figure 6) is built on.
    pub fn operational_intensity(self) -> f64 {
        self.entries_per_packet as f64 / crate::packet::PACKET_BYTES as f64
    }
}

/// Minimum number of bits needed to represent `max_value`.
fn bits_for(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_layout() {
        // M = 1024, V = 20 -> B = 15, 4-bit ptr, 10-bit idx (Figure 3).
        let l = PacketLayout::solve(1024, 20).unwrap();
        assert_eq!(l.entries_per_packet(), 15);
        assert_eq!(l.ptr_bits(), 4);
        assert_eq!(l.idx_bits(), 10);
        assert_eq!(l.bits_used(), 511);
    }

    #[test]
    fn layout_for_25_and_32_bit_designs() {
        // V = 25 -> B = 13; V = 32 -> B = 11 (M = 1024).
        assert_eq!(
            PacketLayout::solve(1024, 25).unwrap().entries_per_packet(),
            13
        );
        assert_eq!(
            PacketLayout::solve(1024, 32).unwrap().entries_per_packet(),
            11
        );
    }

    #[test]
    fn wider_index_reduces_capacity() {
        let narrow = PacketLayout::solve(512, 20).unwrap();
        let wide = PacketLayout::solve(65536, 20).unwrap();
        assert!(wide.entries_per_packet() < narrow.entries_per_packet());
        assert_eq!(wide.idx_bits(), 16);
    }

    #[test]
    fn capacity_equation_is_respected_across_design_space() {
        for v in 8..=40 {
            for m in [2usize, 100, 512, 1024, 4096, 65536, 1 << 20] {
                let l = PacketLayout::solve(m, v).unwrap();
                assert!(l.bits_used() <= 512, "layout {l:?} overflows");
                // Adding one more entry must not fit.
                let b = l.entries_per_packet() + 1;
                let over = b * (bits_for(b as u64) + l.idx_bits() + v) + 1;
                assert!(over > 512, "layout {l:?} is not maximal");
            }
        }
    }

    #[test]
    fn with_entries_constrains_b() {
        let l = PacketLayout::with_entries(1024, 20, 5).unwrap();
        assert_eq!(l.entries_per_packet(), 5);
        assert!(PacketLayout::with_entries(1024, 20, 16).is_err());
        assert!(PacketLayout::with_entries(1024, 20, 0).is_err());
    }

    #[test]
    fn unsatisfiable_layout_is_an_error() {
        // 64-bit values + 2^60 columns cannot fit a single entry
        // alongside the new_row bit... actually 1*(1+60+64)+1 = 126 fits;
        // use explicit check with value_bits=64 and full u64 index space.
        let r = PacketLayout::solve(usize::MAX, 64);
        // 1 * (1 + 64 + 64) + 1 = 130 <= 512, so even this fits; verify
        // the solver still returns a valid B >= 1.
        assert!(r.unwrap().entries_per_packet() >= 1);
        assert!(PacketLayout::solve(0, 20).is_err());
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let solved = PacketLayout::solve(1024, 20).unwrap();
        let rebuilt = PacketLayout::from_parts(
            solved.entries_per_packet(),
            solved.ptr_bits(),
            solved.idx_bits(),
            solved.value_bits(),
        )
        .unwrap();
        assert_eq!(rebuilt, solved);
        // Zero B, wrong ptr width, overflowing fields: all rejected.
        assert!(PacketLayout::from_parts(0, 1, 10, 20).is_err());
        assert!(PacketLayout::from_parts(15, 5, 10, 20).is_err());
        assert!(PacketLayout::from_parts(15, 4, 64, 64).is_err());
        assert!(PacketLayout::from_parts(15, 4, 10, 0).is_err());
    }

    #[test]
    fn packets_and_bytes_accounting() {
        let l = PacketLayout::solve(1024, 20).unwrap();
        assert_eq!(l.packets_for(0), 0);
        assert_eq!(l.packets_for(1), 1);
        assert_eq!(l.packets_for(15), 1);
        assert_eq!(l.packets_for(16), 2);
        assert_eq!(l.bytes_for(16), 128);
        assert!((l.operational_intensity() - 15.0 / 64.0).abs() < 1e-12);
    }
}
