//! Persisted index snapshots: a versioned, checksummed binary container
//! for encoded collections.
//!
//! The paper's premise is that the BS-CSR encode + HBM placement is a
//! one-time cost amortised over many queries — but a cost paid from raw
//! CSR on *every process start* is not amortised at all. A [`Snapshot`]
//! captures a backend's prepared form on disk so a server restart (or a
//! replica fleet) pays the encode once and `load`s thereafter:
//!
//! ```text
//! offset  field
//! 0       magic "TKSPSNAP" (8 bytes)
//! 8       format version (u16 LE)
//! 10      payload kind    (u8: 0 = CSR arrays, 1 = BS-CSR partitions)
//! 11      precision tag   (u8: 0 = none, else Precision)
//! 12      family length   (u16 LE) + family UTF-8 bytes
//! ..      num_rows, num_cols, nnz (u64 LE each)
//! ..      payload (see [`SnapshotPayload`])
//! ..      companion tag   (u8: 0 = none, 1 = prune index; v2+ only)
//! ..      companion section (tag 1 only, self-versioned; see below)
//! end-4   CRC-32 (IEEE) of every preceding byte (u32 LE)
//! ```
//!
//! Everything is little-endian. Reading verifies the magic, version,
//! tags, structural invariants of the payload (including a full
//! [`BsCsr::validate`] pass per partition, exactly as a host validates
//! data read back from device memory), and the CRC trailer; every
//! failure mode is a distinct [`SnapshotError`] so callers can tell a
//! truncated copy from a corrupted one from a version skew.
//!
//! Format version 2 appends an optional **companion section** after the
//! payload: a low-bit [`PruneIndex`] for the staged prune + rescore
//! query pipeline. The section carries its own version field
//! ([`PRUNE_SECTION_VERSION`]) so the companion codec can evolve
//! independently of the container; a skewed companion version fails
//! with [`SnapshotError::UnsupportedCompanionVersion`]. Version-1
//! streams (no companion byte at all) still load — the companion is an
//! optional accelerant, so they simply come back with `companion: None`
//! and pruning unavailable.
//!
//! # Example
//!
//! ```
//! use tkspmv_sparse::snapshot::{Snapshot, SnapshotPayload};
//! use tkspmv_sparse::Csr;
//!
//! let csr = Csr::from_triplets(2, 4, &[(0, 1, 0.5), (1, 3, 0.25)])?;
//! let snap = Snapshot {
//!     family: "cpu".to_string(),
//!     num_rows: 2,
//!     num_cols: 4,
//!     nnz: 2,
//!     payload: SnapshotPayload::Csr(csr),
//!     companion: None,
//! };
//! let mut buf = Vec::new();
//! snap.write_to(&mut buf)?;
//! let back = Snapshot::read_from(buf.as_slice())?;
//! assert_eq!(back.family, "cpu");
//! assert_eq!(back.nnz, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{Read, Write};

use tkspmv_fixed::{Precision, PruneBits};

use crate::bscsr::BsCsr;
use crate::csr::Csr;
use crate::layout::PacketLayout;
use crate::packet::Packet512;
use crate::prune::PruneIndex;

/// The 8-byte magic every snapshot stream starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TKSPSNAP";

/// The snapshot format version this build writes.
pub const SNAPSHOT_VERSION: u16 = 2;

/// The oldest format version this build still reads. Version 1 predates
/// the companion prune-index section; v1 streams load with
/// `companion: None` (pruning unavailable), nothing else changes.
pub const MIN_SNAPSHOT_VERSION: u16 = 1;

/// Version of the companion prune-index section codec, carried inside
/// the section so it can evolve independently of the container format.
pub const PRUNE_SECTION_VERSION: u16 = 1;

/// Initial element reservation cap for header-declared counts, so a
/// hostile length field cannot force a huge up-front allocation — the
/// vectors still grow to the real (CRC-verified) size, just amortised.
const RESERVE_CAP: usize = 1 << 16;

/// Why a snapshot could not be written, read, or accepted.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Underlying I/O failure (other than a short read, which is
    /// reported as [`SnapshotError::Truncated`]).
    Io(std::io::Error),
    /// The stream does not start with [`SNAPSHOT_MAGIC`] — not a
    /// snapshot at all.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the stream.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The stream ended before the named section was complete.
    Truncated {
        /// Which section the short read happened in.
        section: &'static str,
    },
    /// The CRC-32 trailer does not match the bytes read — the snapshot
    /// is corrupt (bit rot, torn write, tampering).
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the stream.
        computed: u32,
    },
    /// The precision tag is not one this build knows.
    UnknownPrecision {
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload-kind tag is not one this build knows.
    UnknownPayloadKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// The companion-section tag is not one this build knows.
    UnknownCompanionTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The companion prune-index section was written by an incompatible
    /// section codec version (the container itself is fine).
    UnsupportedCompanionVersion {
        /// Section version recorded in the stream.
        found: u16,
        /// Section version this build supports.
        supported: u16,
    },
    /// The snapshot belongs to a different backend family than the one
    /// trying to consume it.
    FamilyMismatch {
        /// Family recorded in the snapshot.
        snapshot: String,
        /// Family of the consuming backend.
        backend: String,
    },
    /// The stream decoded but violates a structural invariant (lengths
    /// that do not add up, an invalid packet stream, a header that
    /// contradicts the payload).
    Invalid {
        /// Which invariant failed.
        detail: String,
    },
    /// The snapshot itself is well-formed, but the backend refused to
    /// restore it (wrong precision, infeasible design, wrong payload
    /// shape for that engine).
    Rejected {
        /// The backend's explanation.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a tkspmv snapshot (magic {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated in the {section} section")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: trailer says {stored:#010x}, stream hashes to {computed:#010x}"
            ),
            SnapshotError::UnknownPrecision { tag } => {
                write!(f, "unknown precision tag {tag} in snapshot header")
            }
            SnapshotError::UnknownPayloadKind { kind } => {
                write!(f, "unknown payload kind {kind} in snapshot header")
            }
            SnapshotError::UnknownCompanionTag { tag } => {
                write!(f, "unknown companion section tag {tag} in snapshot")
            }
            SnapshotError::UnsupportedCompanionVersion { found, supported } => write!(
                f,
                "companion prune-index section version {found} is not supported \
                 (this build reads {supported})"
            ),
            SnapshotError::FamilyMismatch { snapshot, backend } => write!(
                f,
                "snapshot belongs to backend family `{snapshot}`, not `{backend}`"
            ),
            SnapshotError::Invalid { detail } => {
                write!(f, "structurally invalid snapshot: {detail}")
            }
            SnapshotError::Rejected { detail } => {
                write!(f, "backend rejected the snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl SnapshotError {
    fn invalid(detail: impl Into<String>) -> Self {
        SnapshotError::Invalid {
            detail: detail.into(),
        }
    }
}

/// The backend-specific body of a snapshot.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotPayload {
    /// Raw CSR arrays — the prepared form of the exact baselines, which
    /// keep the source matrix and re-prepare from it for free.
    Csr(Csr),
    /// Encoded per-core BS-CSR packet streams — the accelerator's
    /// prepared form, loadable without re-running the layout solve and
    /// encode.
    BsCsrPartitions {
        /// Numeric precision the partitions were encoded with.
        precision: Precision,
        /// The packet layout shared by every partition.
        layout: PacketLayout,
        /// `(first_row, packets)` per core, in ascending row order.
        partitions: Vec<(u64, BsCsr)>,
    },
}

impl SnapshotPayload {
    /// The payload-kind tag written to the header.
    fn kind_tag(&self) -> u8 {
        match self {
            SnapshotPayload::Csr(_) => 0,
            SnapshotPayload::BsCsrPartitions { .. } => 1,
        }
    }

    /// The precision tag written to the header (0 = none).
    fn precision_tag(&self) -> u8 {
        match self {
            SnapshotPayload::Csr(_) => 0,
            SnapshotPayload::BsCsrPartitions { precision, .. } => precision_to_tag(*precision),
        }
    }

    /// The encoding precision, if the payload carries one.
    pub fn precision(&self) -> Option<Precision> {
        match self {
            SnapshotPayload::Csr(_) => None,
            SnapshotPayload::BsCsrPartitions { precision, .. } => Some(*precision),
        }
    }
}

/// A persisted prepared collection: identity header plus payload.
///
/// Built by `PreparedMatrix::save` in the core crate and consumed by
/// `PreparedMatrix::load`; the struct and codec live here so the format
/// sits next to the formats it serialises.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Compatibility family of the backend that prepared the collection
    /// (e.g. `fpga-20b`, `cpu`, `gpu`).
    pub family: String,
    /// Rows (embeddings) in the collection.
    pub num_rows: u64,
    /// Columns (embedding dimension).
    pub num_cols: u64,
    /// Logical non-zeros.
    pub nnz: u64,
    /// The backend-specific body.
    pub payload: SnapshotPayload,
    /// Optional low-bit companion prune index (format v2+), built at
    /// prepare time for the staged prune + rescore pipeline. `None` in
    /// v1 streams and for backends that do not keep one — loading then
    /// simply leaves pruning unavailable.
    pub companion: Option<PruneIndex>,
}

impl Snapshot {
    /// Serialises the snapshot, appending the CRC-32 trailer.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on write failure, [`SnapshotError::Invalid`]
    /// if the in-memory snapshot violates format limits (e.g. a family
    /// string longer than a `u16` length field).
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), SnapshotError> {
        let mut w = CrcWriter::new(writer);
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&[self.payload.kind_tag(), self.payload.precision_tag()])?;
        let family = self.family.as_bytes();
        let family_len = u16::try_from(family.len())
            .map_err(|_| SnapshotError::invalid("family name longer than 65535 bytes"))?;
        w.write_all(&family_len.to_le_bytes())?;
        w.write_all(family)?;
        for v in [self.num_rows, self.num_cols, self.nnz] {
            w.write_all(&v.to_le_bytes())?;
        }
        match &self.payload {
            SnapshotPayload::Csr(csr) => write_csr(&mut w, csr)?,
            SnapshotPayload::BsCsrPartitions {
                layout, partitions, ..
            } => write_partitions(&mut w, *layout, partitions)?,
        }
        match &self.companion {
            None => w.write_all(&[0u8])?,
            Some(index) => {
                w.write_all(&[1u8])?;
                write_prune_index(&mut w, index)?;
            }
        }
        let crc = w.crc();
        w.into_inner().write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Deserialises and fully verifies a snapshot: magic, version, tags,
    /// payload structure (including per-partition [`BsCsr::validate`]),
    /// header/payload consistency, and the CRC-32 trailer.
    ///
    /// # Errors
    ///
    /// The [`SnapshotError`] variant naming the first defect found.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, SnapshotError> {
        let mut r = CrcReader::new(reader);
        let mut magic = [0u8; 8];
        read_exact(&mut r, &mut magic, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = read_u16(&mut r, "version")?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let kind = read_u8(&mut r, "payload kind")?;
        let precision_tag = read_u8(&mut r, "precision tag")?;
        let family_len = read_u16(&mut r, "family")? as usize;
        let mut family = vec![0u8; family_len];
        read_exact(&mut r, &mut family, "family")?;
        let family = String::from_utf8(family)
            .map_err(|_| SnapshotError::invalid("family name is not UTF-8"))?;
        let num_rows = read_u64(&mut r, "header")?;
        let num_cols = read_u64(&mut r, "header")?;
        let nnz = read_u64(&mut r, "header")?;

        let payload = match kind {
            0 => {
                if precision_tag != 0 {
                    return Err(SnapshotError::invalid(
                        "CSR payload must not carry a precision tag",
                    ));
                }
                SnapshotPayload::Csr(read_csr(&mut r, num_rows, num_cols, nnz)?)
            }
            1 => {
                let precision = tag_to_precision(precision_tag)?;
                let (layout, partitions) = read_partitions(&mut r, precision)?;
                SnapshotPayload::BsCsrPartitions {
                    precision,
                    layout,
                    partitions,
                }
            }
            other => return Err(SnapshotError::UnknownPayloadKind { kind: other }),
        };

        // v1 streams end at the payload; v2+ carry a companion tag.
        let companion = if version >= 2 {
            match read_u8(&mut r, "companion tag")? {
                0 => None,
                1 => Some(read_prune_index(&mut r)?),
                tag => return Err(SnapshotError::UnknownCompanionTag { tag }),
            }
        } else {
            None
        };

        let computed = r.crc();
        let mut trailer = [0u8; 4];
        // The trailer is not covered by itself: read it unhashed.
        match r.inner.read_exact(&mut trailer) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(SnapshotError::Truncated {
                    section: "checksum trailer",
                })
            }
            Err(e) => return Err(SnapshotError::Io(e)),
        }
        let stored = u32::from_le_bytes(trailer);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let snapshot = Snapshot {
            family,
            num_rows,
            num_cols,
            nnz,
            payload,
            companion,
        };
        snapshot.check_header_payload_consistency()?;
        Ok(snapshot)
    }

    /// Cross-checks the identity header against the decoded payload.
    fn check_header_payload_consistency(&self) -> Result<(), SnapshotError> {
        let (rows, cols, nnz) = match &self.payload {
            SnapshotPayload::Csr(csr) => (
                csr.num_rows() as u64,
                csr.num_cols() as u64,
                csr.nnz() as u64,
            ),
            SnapshotPayload::BsCsrPartitions { partitions, .. } => {
                let mut next_row = 0u64;
                let mut nnz = 0u64;
                let mut cols = 0u64;
                for (i, (first_row, part)) in partitions.iter().enumerate() {
                    if *first_row != next_row {
                        return Err(SnapshotError::invalid(format!(
                            "partition {i} starts at row {first_row}, expected {next_row}"
                        )));
                    }
                    if i == 0 {
                        cols = part.num_cols() as u64;
                    } else if part.num_cols() as u64 != cols {
                        return Err(SnapshotError::invalid(format!(
                            "partition {i} has {} columns, partition 0 has {cols}",
                            part.num_cols()
                        )));
                    }
                    next_row += part.num_rows() as u64;
                    nnz += part.logical_nnz();
                }
                (next_row, cols, nnz)
            }
        };
        if (rows, cols, nnz) != (self.num_rows, self.num_cols, self.nnz) {
            return Err(SnapshotError::invalid(format!(
                "header declares {}x{} with {} nnz, payload holds {rows}x{cols} with {nnz} nnz",
                self.num_rows, self.num_cols, self.nnz
            )));
        }
        if let Some(index) = &self.companion {
            if (
                index.num_rows() as u64,
                index.num_cols() as u64,
                index.nnz(),
            ) != (self.num_rows, self.num_cols, self.nnz)
            {
                return Err(SnapshotError::invalid(format!(
                    "companion prune index covers {}x{} with {} nnz, snapshot is {}x{} with {}",
                    index.num_rows(),
                    index.num_cols(),
                    index.nnz(),
                    self.num_rows,
                    self.num_cols,
                    self.nnz
                )));
            }
        }
        Ok(())
    }
}

fn write_csr<W: Write>(w: &mut CrcWriter<W>, csr: &Csr) -> Result<(), SnapshotError> {
    for &p in csr.row_ptr() {
        w.write_all(&p.to_le_bytes())?;
    }
    for &c in csr.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    for &v in csr.values() {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    Ok(())
}

fn read_csr<R: Read>(
    r: &mut CrcReader<R>,
    num_rows: u64,
    num_cols: u64,
    nnz: u64,
) -> Result<Csr, SnapshotError> {
    let rows = usize::try_from(num_rows)
        .ok()
        .filter(|&n| n < usize::MAX)
        .ok_or_else(|| SnapshotError::invalid("row count does not fit this platform"))?;
    let cols = usize::try_from(num_cols)
        .map_err(|_| SnapshotError::invalid("column count does not fit this platform"))?;
    let entries = usize::try_from(nnz)
        .map_err(|_| SnapshotError::invalid("nnz does not fit this platform"))?;
    let row_ptr = read_u64_array(r, rows + 1, "CSR row pointers")?;
    let col_idx = read_u32_array(r, entries, "CSR column indices")?;
    let values = read_u32_array(r, entries, "CSR values")?
        .into_iter()
        .map(f32::from_bits)
        .collect();
    Csr::from_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|e| SnapshotError::invalid(format!("CSR payload invalid: {e}")))
}

fn write_partitions<W: Write>(
    w: &mut CrcWriter<W>,
    layout: PacketLayout,
    partitions: &[(u64, BsCsr)],
) -> Result<(), SnapshotError> {
    let count = u32::try_from(partitions.len())
        .map_err(|_| SnapshotError::invalid("more than u32::MAX partitions"))?;
    w.write_all(&count.to_le_bytes())?;
    for field in [
        layout.entries_per_packet(),
        layout.ptr_bits(),
        layout.idx_bits(),
        layout.value_bits(),
    ] {
        w.write_all(&field.to_le_bytes())?;
    }
    for (first_row, part) in partitions {
        if part.layout() != layout {
            return Err(SnapshotError::invalid(
                "partition layout differs from the snapshot layout",
            ));
        }
        for v in [
            *first_row,
            part.num_rows() as u64,
            part.num_cols() as u64,
            part.stored_entries(),
            part.logical_nnz(),
            part.num_packets() as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        for packet in part.packets() {
            for word in packet.words() {
                w.write_all(&word.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_partitions<R: Read>(
    r: &mut CrcReader<R>,
    precision: Precision,
) -> Result<(PacketLayout, Vec<(u64, BsCsr)>), SnapshotError> {
    let count = read_u32(r, "partition count")? as usize;
    let b = read_u32(r, "packet layout")?;
    let ptr_bits = read_u32(r, "packet layout")?;
    let idx_bits = read_u32(r, "packet layout")?;
    let value_bits = read_u32(r, "packet layout")?;
    let layout = PacketLayout::from_parts(b, ptr_bits, idx_bits, value_bits)
        .map_err(|e| SnapshotError::invalid(format!("packet layout invalid: {e}")))?;
    if layout.value_bits() != precision.value_bits() {
        return Err(SnapshotError::invalid(format!(
            "layout stores {}-bit values but precision {} needs {}",
            layout.value_bits(),
            precision.label(),
            precision.value_bits()
        )));
    }
    let mut partitions = Vec::with_capacity(count.min(RESERVE_CAP));
    for i in 0..count {
        let first_row = read_u64(r, "partition header")?;
        let num_rows = usize::try_from(read_u64(r, "partition header")?)
            .map_err(|_| SnapshotError::invalid("partition row count overflow"))?;
        let num_cols = usize::try_from(read_u64(r, "partition header")?)
            .map_err(|_| SnapshotError::invalid("partition column count overflow"))?;
        let stored_entries = read_u64(r, "partition header")?;
        let logical_nnz = read_u64(r, "partition header")?;
        let num_packets = usize::try_from(read_u64(r, "partition header")?)
            .map_err(|_| SnapshotError::invalid("partition packet count overflow"))?;
        // Packets are read in bulk chunks (not word-by-word through the
        // `Read` trait): the load path exists to beat re-encoding, and a
        // 1M-nnz collection is ~70k packets. The chunk size also caps
        // what a hostile count can make us allocate up front.
        const PACKETS_PER_CHUNK: usize = 4_096;
        let mut packets = Vec::with_capacity(num_packets.min(RESERVE_CAP));
        let mut buf = vec![0u8; crate::PACKET_BYTES * num_packets.min(PACKETS_PER_CHUNK)];
        let mut remaining = num_packets;
        while remaining > 0 {
            let take = remaining.min(PACKETS_PER_CHUNK);
            let bytes = &mut buf[..crate::PACKET_BYTES * take];
            read_exact(r, bytes, "packet stream")?;
            for packet in bytes.chunks_exact(crate::PACKET_BYTES) {
                let mut words = [0u64; 8];
                for (word, raw) in words.iter_mut().zip(packet.chunks_exact(8)) {
                    // invariant: chunks_exact yields exactly 8-byte slices
                    *word = u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
                }
                packets.push(Packet512::from_words(words));
            }
            remaining -= take;
        }
        let part = BsCsr::from_parts(
            layout,
            packets,
            num_rows,
            num_cols,
            stored_entries,
            logical_nnz,
        )
        .map_err(|e| SnapshotError::invalid(format!("partition {i} invalid: {e}")))?;
        partitions.push((first_row, part));
    }
    Ok((layout, partitions))
}

fn write_prune_index<W: Write>(
    w: &mut CrcWriter<W>,
    index: &PruneIndex,
) -> Result<(), SnapshotError> {
    w.write_all(&PRUNE_SECTION_VERSION.to_le_bytes())?;
    w.write_all(&[index.bits().bits() as u8])?;
    for v in [
        index.num_rows() as u64,
        index.num_cols() as u64,
        index.nnz(),
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    for &p in index.row_ptr() {
        w.write_all(&p.to_le_bytes())?;
    }
    for &c in index.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    w.write_all(index.packed())?;
    Ok(())
}

fn read_prune_index<R: Read>(r: &mut CrcReader<R>) -> Result<PruneIndex, SnapshotError> {
    let section_version = read_u16(r, "companion section")?;
    if section_version != PRUNE_SECTION_VERSION {
        return Err(SnapshotError::UnsupportedCompanionVersion {
            found: section_version,
            supported: PRUNE_SECTION_VERSION,
        });
    }
    let bits = match read_u8(r, "companion section")? {
        4 => PruneBits::Four,
        8 => PruneBits::Eight,
        tag => {
            return Err(SnapshotError::invalid(format!(
                "companion prune index declares unknown width {tag} bits"
            )))
        }
    };
    let num_rows = usize::try_from(read_u64(r, "companion section")?)
        .map_err(|_| SnapshotError::invalid("companion row count does not fit this platform"))?;
    let num_cols = usize::try_from(read_u64(r, "companion section")?)
        .map_err(|_| SnapshotError::invalid("companion column count does not fit this platform"))?;
    let nnz = usize::try_from(read_u64(r, "companion section")?)
        .map_err(|_| SnapshotError::invalid("companion nnz does not fit this platform"))?;
    let rows_plus_one = num_rows
        .checked_add(1)
        .ok_or_else(|| SnapshotError::invalid("companion row count overflow"))?;
    let row_ptr = read_u32_array(r, rows_plus_one, "companion row pointers")?;
    let col_idx = read_u16_array(r, nnz, "companion column indices")?;
    let packed_len = match bits {
        PruneBits::Eight => nnz,
        PruneBits::Four => nnz.div_ceil(2),
    };
    let packed = read_u8_array(r, packed_len, "companion value stream")?;
    PruneIndex::from_parts(bits, num_rows, num_cols, row_ptr, col_idx, packed)
        .map_err(|e| SnapshotError::invalid(format!("companion prune index invalid: {e}")))
}

fn precision_to_tag(p: Precision) -> u8 {
    match p {
        Precision::Fixed20 => 1,
        Precision::Fixed25 => 2,
        Precision::Fixed32 => 3,
        Precision::Float32 => 4,
        Precision::Half16 => 5,
    }
}

fn tag_to_precision(tag: u8) -> Result<Precision, SnapshotError> {
    match tag {
        1 => Ok(Precision::Fixed20),
        2 => Ok(Precision::Fixed25),
        3 => Ok(Precision::Fixed32),
        4 => Ok(Precision::Float32),
        5 => Ok(Precision::Half16),
        other => Err(SnapshotError::UnknownPrecision { tag: other }),
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), slicing-by-8.
//
// The checksum runs over every payload byte on both the save and the
// load path, and the load path's whole purpose is to be much cheaper
// than re-encoding — so the CRC is table-sliced to process eight bytes
// per step instead of one.

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Self { state: !0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        let t = &CRC32_TABLES;
        let mut chunks = bytes.chunks_exact(8);
        let mut state = self.state;
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            state = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            state = t[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice — public so fault-injection
/// tests can re-seal a deliberately patched snapshot and prove the
/// *semantic* checks fire, not just the checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Writer wrapper that hashes every byte written through it.
struct CrcWriter<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.write_all(bytes)?;
        self.crc.update(bytes);
        Ok(())
    }

    fn crc(&self) -> u32 {
        self.crc.finish()
    }

    fn into_inner(self) -> W {
        self.inner
    }
}

/// Reader wrapper that hashes every byte read through it.
struct CrcReader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }

    fn crc(&self) -> u32 {
        self.crc.finish()
    }
}

/// Fills `buf` from the reader, hashing it and mapping a short read to
/// [`SnapshotError::Truncated`] naming `section`.
fn read_exact<R: Read>(
    r: &mut CrcReader<R>,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), SnapshotError> {
    match r.inner.read_exact(buf) {
        Ok(()) => {
            r.crc.update(buf);
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(SnapshotError::Truncated { section })
        }
        Err(e) => Err(SnapshotError::Io(e)),
    }
}

fn read_u8<R: Read>(r: &mut CrcReader<R>, section: &'static str) -> Result<u8, SnapshotError> {
    let mut b = [0u8; 1];
    read_exact(r, &mut b, section)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut CrcReader<R>, section: &'static str) -> Result<u16, SnapshotError> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b, section)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut CrcReader<R>, section: &'static str) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, section)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut CrcReader<R>, section: &'static str) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, section)?;
    Ok(u64::from_le_bytes(b))
}

/// Elements per bulk-read chunk for array sections. Chunking both
/// amortises the per-call `Read`/CRC overhead (the load path exists to
/// beat re-preparation) and caps what a hostile count can make the
/// reader allocate before the stream runs dry.
const ELEMS_PER_CHUNK: usize = 65_536;

fn read_u64_array<R: Read>(
    r: &mut CrcReader<R>,
    count: usize,
    section: &'static str,
) -> Result<Vec<u64>, SnapshotError> {
    let mut out = Vec::with_capacity(count.min(RESERVE_CAP));
    let mut buf = vec![0u8; 8 * count.min(ELEMS_PER_CHUNK)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(ELEMS_PER_CHUNK);
        let bytes = &mut buf[..8 * take];
        read_exact(r, bytes, section)?;
        out.extend(
            bytes
                .chunks_exact(8)
                // invariant: chunks_exact yields exactly 8-byte slices
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u32_array<R: Read>(
    r: &mut CrcReader<R>,
    count: usize,
    section: &'static str,
) -> Result<Vec<u32>, SnapshotError> {
    let mut out = Vec::with_capacity(count.min(RESERVE_CAP));
    let mut buf = vec![0u8; 4 * count.min(ELEMS_PER_CHUNK)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(ELEMS_PER_CHUNK);
        let bytes = &mut buf[..4 * take];
        read_exact(r, bytes, section)?;
        out.extend(
            bytes
                .chunks_exact(4)
                // invariant: chunks_exact yields exactly 4-byte slices
                .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u16_array<R: Read>(
    r: &mut CrcReader<R>,
    count: usize,
    section: &'static str,
) -> Result<Vec<u16>, SnapshotError> {
    let mut out = Vec::with_capacity(count.min(RESERVE_CAP));
    let mut buf = vec![0u8; 2 * count.min(ELEMS_PER_CHUNK)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(ELEMS_PER_CHUNK);
        let bytes = &mut buf[..2 * take];
        read_exact(r, bytes, section)?;
        out.extend(
            bytes
                .chunks_exact(2)
                // invariant: chunks_exact yields exactly 2-byte slices
                .map(|b| u16::from_le_bytes(b.try_into().expect("2-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u8_array<R: Read>(
    r: &mut CrcReader<R>,
    count: usize,
    section: &'static str,
) -> Result<Vec<u8>, SnapshotError> {
    let mut out = Vec::with_capacity(count.min(RESERVE_CAP));
    let mut buf = vec![0u8; count.min(ELEMS_PER_CHUNK)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(ELEMS_PER_CHUNK);
        let bytes = &mut buf[..take];
        read_exact(r, bytes, section)?;
        out.extend_from_slice(bytes);
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{NnzDistribution, SyntheticConfig};
    use tkspmv_fixed::Q1_19;

    fn sample_csr() -> Csr {
        SyntheticConfig {
            num_rows: 120,
            num_cols: 256,
            avg_nnz_per_row: 9,
            distribution: NnzDistribution::table3_gamma(),
            seed: 41,
        }
        .generate()
    }

    fn csr_snapshot() -> Snapshot {
        let csr = sample_csr();
        Snapshot {
            family: "cpu".to_string(),
            num_rows: csr.num_rows() as u64,
            num_cols: csr.num_cols() as u64,
            nnz: csr.nnz() as u64,
            payload: SnapshotPayload::Csr(csr),
            companion: None,
        }
    }

    fn csr_snapshot_with_companion(bits: PruneBits) -> Snapshot {
        let csr = sample_csr();
        let prune = PruneIndex::build(&csr, bits).unwrap();
        Snapshot {
            family: "cpu".to_string(),
            num_rows: csr.num_rows() as u64,
            num_cols: csr.num_cols() as u64,
            nnz: csr.nnz() as u64,
            payload: SnapshotPayload::Csr(csr),
            companion: Some(prune),
        }
    }

    fn bscsr_snapshot() -> Snapshot {
        let csr = sample_csr();
        let layout = PacketLayout::solve(csr.num_cols(), 20).unwrap();
        let partitions: Vec<(u64, BsCsr)> = csr
            .partition_rows(4)
            .into_iter()
            .map(|(first, part)| (first as u64, BsCsr::encode::<Q1_19>(&part, layout)))
            .collect();
        Snapshot {
            family: "fpga-20b".to_string(),
            num_rows: csr.num_rows() as u64,
            num_cols: csr.num_cols() as u64,
            nnz: csr.nnz() as u64,
            payload: SnapshotPayload::BsCsrPartitions {
                precision: Precision::Fixed20,
                layout,
                partitions,
            },
            companion: None,
        }
    }

    fn to_bytes(s: &Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        buf
    }

    /// Recomputes the CRC trailer after test byte surgery.
    fn reseal(bytes: &mut [u8]) {
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn csr_snapshot_round_trips() {
        let snap = csr_snapshot();
        let back = Snapshot::read_from(to_bytes(&snap).as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn bscsr_snapshot_round_trips() {
        let snap = bscsr_snapshot();
        let back = Snapshot::read_from(to_bytes(&snap).as_slice()).unwrap();
        assert_eq!(back, snap);
        let SnapshotPayload::BsCsrPartitions { partitions, .. } = &back.payload else {
            panic!("payload kind changed in flight");
        };
        assert_eq!(partitions.len(), 4);
        for (_, part) in partitions {
            assert_eq!(part.validate(), Ok(()));
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = to_bytes(&csr_snapshot());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = to_bytes(&csr_snapshot());
        bytes[8] = 0x7F; // version LE low byte
        match Snapshot::read_from(bytes.as_slice()) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 0x7F);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = to_bytes(&bscsr_snapshot());
        // Chop at a spread of prefixes including boundary-interesting
        // ones; every one must fail Truncated, never panic or mis-read.
        for cut in [
            0,
            1,
            7,
            8,
            9,
            12,
            20,
            40,
            bytes.len() / 2,
            bytes.len() - 5,
            bytes.len() - 1,
        ] {
            match Snapshot::read_from(&bytes[..cut]) {
                Err(SnapshotError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_payload_byte_is_always_detected() {
        // A flip that breaks payload structure fails the structural
        // revalidation; one that decodes cleanly fails the CRC. Either
        // way corruption is a typed error, never a silent mis-read.
        for snap in [csr_snapshot(), bscsr_snapshot()] {
            let clean = to_bytes(&snap);
            for offset in [clean.len() / 3, clean.len() / 2, clean.len() - 8] {
                let mut bytes = clean.clone();
                bytes[offset] ^= 0x10;
                match Snapshot::read_from(bytes.as_slice()) {
                    Err(SnapshotError::ChecksumMismatch { .. })
                    | Err(SnapshotError::Invalid { .. }) => {}
                    other => panic!("flip at {offset}: expected detection, got {other:?}"),
                }
            }
        }
        // A flip inside the CSR value area decodes structurally clean, so
        // the CRC trailer is the layer that must catch it.
        let mut bytes = to_bytes(&csr_snapshot());
        let in_values = bytes.len() - 6;
        bytes[in_values] ^= 0x10;
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn flipped_trailer_byte_fails_the_checksum() {
        let mut bytes = to_bytes(&csr_snapshot());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn unknown_precision_tag_is_typed() {
        let mut bytes = to_bytes(&bscsr_snapshot());
        bytes[11] = 99; // precision tag
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::UnknownPrecision { tag: 99 })
        ));
    }

    #[test]
    fn unknown_payload_kind_is_typed() {
        let mut bytes = to_bytes(&csr_snapshot());
        bytes[10] = 9; // payload kind
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::UnknownPayloadKind { kind: 9 })
        ));
    }

    #[test]
    fn header_payload_disagreement_is_invalid() {
        // The partitions decode cleanly and the CRC matches (the lie was
        // written and sealed), so the cross-check is the detecting layer.
        let mut snap = bscsr_snapshot();
        snap.nnz += 1;
        let bytes = to_bytes(&snap);
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::Invalid { .. })
        ));
        // For a CSR payload the header drives parsing, so a row-count lie
        // derails decoding instead — still a typed failure.
        let mut snap = csr_snapshot();
        snap.num_rows += 1;
        let bytes = to_bytes(&snap);
        match Snapshot::read_from(bytes.as_slice()) {
            Err(SnapshotError::Invalid { .. })
            | Err(SnapshotError::Truncated { .. })
            | Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("expected a typed failure, got {other:?}"),
        }
    }

    #[test]
    fn companion_round_trips_at_both_widths() {
        for bits in PruneBits::ALL {
            let snap = csr_snapshot_with_companion(bits);
            let back = Snapshot::read_from(to_bytes(&snap).as_slice()).unwrap();
            assert_eq!(back, snap);
            let index = back.companion.expect("companion survived the trip");
            assert_eq!(index.bits(), bits);
            assert_eq!(index.nnz(), snap.nnz);
        }
    }

    #[test]
    fn v1_stream_loads_with_companion_unavailable() {
        // A PR-5 era (v1) stream is a v2 stream minus the companion tag
        // byte, with the version field set to 1. Synthesise one by byte
        // surgery and check it still loads — pruning simply unavailable.
        let snap = csr_snapshot();
        let mut bytes = to_bytes(&snap);
        bytes[8..10].copy_from_slice(&1u16.to_le_bytes());
        let tag_at = bytes.len() - 5;
        bytes.remove(tag_at);
        reseal(&mut bytes);
        let back = Snapshot::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.companion, None);
        assert_eq!(back.payload, snap.payload);
    }

    #[test]
    fn companion_section_version_skew_is_typed() {
        let len_none = to_bytes(&csr_snapshot()).len();
        let mut bytes = to_bytes(&csr_snapshot_with_companion(PruneBits::Eight));
        // The companion section version u16 sits right after the tag byte.
        assert_eq!(bytes[len_none - 5], 1, "companion tag byte located");
        bytes[len_none - 4..len_none - 2].copy_from_slice(&0x7Fu16.to_le_bytes());
        reseal(&mut bytes);
        match Snapshot::read_from(bytes.as_slice()) {
            Err(SnapshotError::UnsupportedCompanionVersion { found, supported }) => {
                assert_eq!(found, 0x7F);
                assert_eq!(supported, PRUNE_SECTION_VERSION);
            }
            other => panic!("expected UnsupportedCompanionVersion, got {other:?}"),
        }
    }

    #[test]
    fn unknown_companion_tag_is_typed() {
        let mut bytes = to_bytes(&csr_snapshot());
        let tag_at = bytes.len() - 5;
        bytes[tag_at] = 9;
        reseal(&mut bytes);
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::UnknownCompanionTag { tag: 9 })
        ));
    }

    #[test]
    fn companion_shape_disagreement_is_invalid() {
        // A companion built for a different matrix writes and seals
        // cleanly, so the header cross-check is the detecting layer.
        let mut snap = csr_snapshot_with_companion(PruneBits::Four);
        let smaller = Csr::from_triplets(1, 4, &[(0, 1, 0.5)]).unwrap();
        snap.companion = Some(PruneIndex::build(&smaller, PruneBits::Four).unwrap());
        let bytes = to_bytes(&snap);
        assert!(matches!(
            Snapshot::read_from(bytes.as_slice()),
            Err(SnapshotError::Invalid { .. })
        ));
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = SnapshotError::UnsupportedVersion {
            found: 3,
            supported: 1,
        };
        assert!(e.to_string().contains("version 3"));
        let e = SnapshotError::Truncated { section: "header" };
        assert!(e.to_string().contains("header"));
        let e = SnapshotError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = SnapshotError::FamilyMismatch {
            snapshot: "cpu".into(),
            backend: "fpga-20b".into(),
        };
        assert!(e.to_string().contains("cpu") && e.to_string().contains("fpga-20b"));
    }
}
