//! Packed COO packet formats, the strawmen of Figure 3.
//!
//! The paper motivates BS-CSR by comparing against two COO packings of a
//! 512-bit packet:
//!
//! - **naive COO**: 32-bit row + 32-bit column + 32-bit value per entry
//!   → 5 entries per packet (480 bits);
//! - **optimised COO**: 32-bit row + reduced column (`ceil(log2 M)`
//!   bits) + reduced value (`V` bits) → 8 entries for `M < 1024`,
//!   `V = 20` (496 bits).
//!
//! The row coordinate cannot be reduced because the number of matrix
//! rows is unbounded (millions); this is exactly the redundancy BS-CSR
//! removes.

use tkspmv_fixed::SpmvScalar;

use crate::bitio::{BitReader, BitWriter};
use crate::csr::Csr;
use crate::packet::{Packet512, PACKET_BITS, PACKET_BYTES};

/// Which COO packing to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CooPacketKind {
    /// 32-bit row, 32-bit column, 32-bit value.
    Naive,
    /// 32-bit row, `ceil(log2 M)`-bit column, `V`-bit value.
    Optimized {
        /// Bits per column index.
        idx_bits: u32,
        /// Bits per value.
        value_bits: u32,
    },
}

impl CooPacketKind {
    /// Bits per packed entry.
    pub fn entry_bits(self) -> u32 {
        match self {
            CooPacketKind::Naive => 96,
            CooPacketKind::Optimized {
                idx_bits,
                value_bits,
            } => 32 + idx_bits + value_bits,
        }
    }

    /// Entries per 512-bit packet.
    pub fn entries_per_packet(self) -> u32 {
        PACKET_BITS as u32 / self.entry_bits()
    }

    /// Operational intensity in non-zeros per byte.
    pub fn operational_intensity(self) -> f64 {
        self.entries_per_packet() as f64 / PACKET_BYTES as f64
    }
}

/// A matrix packed as a stream of COO packets.
///
/// # Example
///
/// ```
/// use tkspmv_sparse::{CooPacketKind, CooPackets, Csr};
/// use tkspmv_fixed::Q1_19;
///
/// let csr = Csr::from_triplets(2, 8, &[(0, 1, 0.5), (1, 2, 0.25)])?;
/// let naive = CooPackets::encode::<tkspmv_fixed::F32>(&csr, CooPacketKind::Naive);
/// assert_eq!(CooPacketKind::Naive.entries_per_packet(), 5);
/// assert_eq!(naive.num_packets(), 1);
/// # Ok::<(), tkspmv_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooPackets {
    kind: CooPacketKind,
    packets: Vec<Packet512>,
    nnz: u64,
    num_rows: usize,
    num_cols: usize,
}

impl CooPackets {
    /// Packs a CSR matrix into COO packets, quantising values with `S`
    /// (use [`tkspmv_fixed::F32`] for the naive 32-bit packing).
    ///
    /// # Panics
    ///
    /// Panics if the packing's value width does not match `S::VALUE_BITS`
    /// or a coordinate does not fit its field.
    pub fn encode<S: SpmvScalar>(csr: &Csr, kind: CooPacketKind) -> Self {
        let (idx_bits, value_bits) = match kind {
            CooPacketKind::Naive => (32, 32),
            CooPacketKind::Optimized {
                idx_bits,
                value_bits,
            } => (idx_bits, value_bits),
        };
        assert_eq!(value_bits, S::VALUE_BITS, "value width mismatch");
        let b = kind.entries_per_packet() as usize;
        let entries: Vec<(u32, u32, u64)> = (0..csr.num_rows())
            .flat_map(|r| {
                csr.row(r)
                    .map(move |(c, v)| (r as u32, c, S::encode(v as f64)))
            })
            .collect();
        let mut packets = Vec::with_capacity(entries.len().div_ceil(b));
        for chunk in entries.chunks(b) {
            let mut w = BitWriter::new();
            for &(r, _, _) in chunk {
                w.write(r as u64, 32);
            }
            for j in chunk.len()..b {
                let _ = j;
                w.write(0, 32);
            }
            for &(_, c, _) in chunk {
                w.write(c as u64, idx_bits);
            }
            for _ in chunk.len()..b {
                w.write(0, idx_bits);
            }
            for &(_, _, v) in chunk {
                w.write(v, value_bits);
            }
            for _ in chunk.len()..b {
                w.write(0, value_bits);
            }
            packets.push(w.finish());
        }
        Self {
            kind,
            packets,
            nnz: entries.len() as u64,
            num_rows: csr.num_rows(),
            num_cols: csr.num_cols(),
        }
    }

    /// The packing in use.
    pub fn kind(&self) -> CooPacketKind {
        self.kind
    }

    /// Number of packets.
    pub fn num_packets(&self) -> usize {
        self.packets.len()
    }

    /// Raw packets.
    pub fn packets(&self) -> &[Packet512] {
        &self.packets
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.packets.len() as u64 * PACKET_BYTES as u64
    }

    /// Iterates `(row, col, raw_value)` over all stored entries.
    pub fn entries<S: SpmvScalar>(&self) -> Vec<(u32, u32, u64)> {
        let (idx_bits, value_bits) = match self.kind {
            CooPacketKind::Naive => (32, 32),
            CooPacketKind::Optimized {
                idx_bits,
                value_bits,
            } => (idx_bits, value_bits),
        };
        let b = self.kind.entries_per_packet() as usize;
        let mut out = Vec::with_capacity(self.nnz as usize);
        let mut remaining = self.nnz as usize;
        for p in &self.packets {
            let real = remaining.min(b);
            let mut r = BitReader::new(p);
            let mut rows = Vec::with_capacity(real);
            for j in 0..b {
                let v = r.read(32) as u32;
                if j < real {
                    rows.push(v);
                }
            }
            let mut cols = Vec::with_capacity(real);
            for j in 0..b {
                let v = r.read(idx_bits) as u32;
                if j < real {
                    cols.push(v);
                }
            }
            for j in 0..b {
                let v = r.read(value_bits);
                if j < real {
                    out.push((rows[j], cols[j], v));
                }
            }
            remaining -= real;
        }
        out
    }

    /// Decodes back to CSR through scalar type `S`.
    pub fn decode<S: SpmvScalar>(&self) -> Csr {
        let triplets: Vec<(u32, u32, f32)> = self
            .entries::<S>()
            .into_iter()
            .map(|(r, c, raw)| (r, c, S::decode(raw).value_to_f64() as f32))
            .collect();
        Csr::from_triplets(self.num_rows, self.num_cols, &triplets)
            // invariant: decoded entries come from a packet encoded from a valid Csr
            .expect("decoded entries valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkspmv_fixed::{F32, Q1_19};

    #[test]
    fn figure3_packing_counts() {
        // Naive COO: 5 entries. Optimised (10-bit idx, 20-bit val): 8.
        assert_eq!(CooPacketKind::Naive.entries_per_packet(), 5);
        let opt = CooPacketKind::Optimized {
            idx_bits: 10,
            value_bits: 20,
        };
        assert_eq!(opt.entries_per_packet(), 8);
        // BS-CSR fits 15 (see layout tests) -> the 3x claim.
        assert!((opt.operational_intensity() - 8.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn naive_round_trip() {
        let csr = Csr::from_triplets(
            3,
            100,
            &[(0, 4, 0.5), (0, 7, 0.25), (1, 99, 1.0), (2, 0, 0.125)],
        )
        .unwrap();
        let packed = CooPackets::encode::<F32>(&csr, CooPacketKind::Naive);
        assert_eq!(packed.num_packets(), 1);
        assert_eq!(packed.decode::<F32>(), csr);
    }

    #[test]
    fn optimized_round_trip_across_packets() {
        let triplets: Vec<(u32, u32, f32)> = (0..20)
            .map(|i| (i / 4, (i * 31) % 1000, 0.01 * (i + 1) as f32))
            .collect();
        let csr = Csr::from_triplets(5, 1024, &triplets).unwrap();
        let kind = CooPacketKind::Optimized {
            idx_bits: 10,
            value_bits: 20,
        };
        let packed = CooPackets::encode::<Q1_19>(&csr, kind);
        assert_eq!(packed.num_packets(), 3); // 20 entries / 8 per packet
        let back = packed.decode::<Q1_19>();
        assert_eq!(back.nnz(), csr.nnz());
        for r in 0..5 {
            for ((c1, v1), (c2, v2)) in csr.row(r).zip(back.row(r)) {
                assert_eq!(c1, c2);
                assert!((v1 - v2).abs() < 2e-6);
            }
        }
    }

    #[test]
    fn bscsr_beats_coo_packing_density() {
        // The central Figure 3 claim: for M < 1024 and V = 20, BS-CSR
        // packs 3x the entries of naive COO.
        let bscsr = crate::PacketLayout::solve(1024, 20).unwrap();
        assert_eq!(
            bscsr.entries_per_packet(),
            3 * CooPacketKind::Naive.entries_per_packet()
        );
    }

    #[test]
    fn size_accounting() {
        let csr = Csr::from_triplets(1, 8, &[(0, 0, 0.5)]).unwrap();
        let packed = CooPackets::encode::<F32>(&csr, CooPacketKind::Naive);
        assert_eq!(packed.size_bytes(), 64);
        assert_eq!(packed.nnz(), 1);
    }
}
