//! Standard [`TopKBackend`] rosters the experiments enumerate.
//!
//! Every figure of the paper compares some subset of the same engines.
//! This module is the single place those engines are constructed, so an
//! experiment never hand-wires a per-engine code path: it iterates a
//! `Vec<Box<dyn TopKBackend>>` and treats every architecture uniformly.
//! Adding a new engine to the evaluation (a sharded accelerator, a
//! different card) means one `impl TopKBackend` plus one constructor
//! here.

use tkspmv::backend::TopKBackend;
use tkspmv::Accelerator;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision, GpuTopK};
use tkspmv_fixed::Precision;

/// The paper's FPGA design (32 cores, k = 8) at a given precision.
///
/// # Panics
///
/// Panics only if the paper design itself stopped building — a bug.
pub fn fpga(precision: Precision) -> Box<dyn TopKBackend> {
    fpga_with_rows_per_packet(precision, None)
}

/// The paper's FPGA design with an explicit `r` row-completion limit
/// (the §IV-B ablation knob); `None` keeps the hardware default.
///
/// # Panics
///
/// Panics if the design does not build (zero `r`, for example).
pub fn fpga_with_rows_per_packet(
    precision: Precision,
    rows_per_packet: Option<u32>,
) -> Box<dyn TopKBackend> {
    let mut builder = Accelerator::builder().precision(precision).cores(32).k(8);
    if let Some(r) = rows_per_packet {
        builder = builder.rows_per_packet(r);
    }
    // invariant: the fixed paper-point configuration always validates
    Box::new(builder.build().expect("paper design builds"))
}

/// The measured CPU baseline using all host cores.
pub fn cpu() -> Box<dyn TopKBackend> {
    Box::new(CpuTopK::with_all_cores())
}

/// The modelled Tesla P100 baseline (SpMV + full Thrust sort).
pub fn gpu(precision: GpuPrecision) -> Box<dyn TopKBackend> {
    Box::new(GpuTopK::new(GpuModel::tesla_p100(), precision))
}

/// The idealised GPU variant that is granted a zero-cost sort.
pub fn gpu_spmv_only(precision: GpuPrecision) -> Box<dyn TopKBackend> {
    Box::new(GpuTopK::new(GpuModel::tesla_p100(), precision).with_zero_cost_sort())
}

/// The modelled architectures of Figure 5 (the measured CPU baseline is
/// the denominator, not a member).
///
/// The GPU *zero-cost sort* columns are not separate roster entries:
/// they would recompute the identical functional result just to bill it
/// differently, and `BackendStats::Gpu` already reports both component
/// times, so the speedup experiment derives the idealised `-spmv`
/// columns from the full runs.
pub fn figure5_roster() -> Vec<Box<dyn TopKBackend>> {
    vec![
        gpu(GpuPrecision::F32),
        gpu(GpuPrecision::F16),
        fpga(Precision::Fixed20),
        fpga(Precision::Fixed25),
        fpga(Precision::Fixed32),
        fpga(Precision::Float32),
    ]
}

/// The four architectures whose ranking quality Figure 7 scores.
pub fn figure7_roster() -> Vec<Box<dyn TopKBackend>> {
    vec![
        fpga(Precision::Fixed20),
        fpga(Precision::Fixed32),
        fpga(Precision::Float32),
        gpu(GpuPrecision::F16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};

    #[test]
    fn roster_names_are_stable_and_unique() {
        let names: Vec<String> = figure5_roster().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["gpu-f32", "gpu-f16", "fpga-20b", "fpga-25b", "fpga-32b", "fpga-f32",]
        );
        assert_eq!(gpu_spmv_only(GpuPrecision::F32).name(), "gpu-f32-spmv");
        assert_eq!(gpu_spmv_only(GpuPrecision::F16).name(), "gpu-f16-spmv");
    }

    #[test]
    fn every_roster_backend_answers_queries() {
        let csr = SyntheticConfig {
            num_rows: 500,
            num_cols: 128,
            avg_nnz_per_row: 10,
            distribution: NnzDistribution::Uniform,
            seed: 3,
        }
        .generate();
        let x = query_vector(128, 1);
        let mut roster = figure5_roster();
        roster.push(cpu());
        for backend in &roster {
            let prepared = backend.prepare(&csr).expect("prepare");
            let out = backend.query(&prepared, &x, 10).expect("query");
            assert_eq!(out.topk.len(), 10, "{}", backend.name());
            assert!(out.perf.kernel_seconds > 0.0, "{}", backend.name());
        }
    }
}
