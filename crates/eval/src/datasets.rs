//! The Table III dataset registry: 19 matrices (12 uniform, 6 Γ, 1
//! sparsified-GloVe-like), reproducible at any scale.

use tkspmv_sparse::gen::{glove_like, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

/// The four dataset groups the paper's figures are panelled by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetGroup {
    /// Synthetic, `N = 0.5·10⁷` rows.
    Synthetic05e7,
    /// Synthetic, `N = 10⁷` rows.
    Synthetic1e7,
    /// Synthetic, `N = 1.5·10⁷` rows.
    Synthetic15e7,
    /// Sparsified GloVe-like corpus, `N = 0.2·10⁷` rows.
    Glove,
}

impl DatasetGroup {
    /// All groups in the order of Figure 5's panels.
    pub const ALL: [DatasetGroup; 4] = [
        DatasetGroup::Synthetic05e7,
        DatasetGroup::Synthetic1e7,
        DatasetGroup::Synthetic15e7,
        DatasetGroup::Glove,
    ];

    /// Panel title used by the paper.
    pub fn label(self) -> &'static str {
        match self {
            DatasetGroup::Synthetic05e7 => "N = 0.5*10^7",
            DatasetGroup::Synthetic1e7 => "N = 10^7",
            DatasetGroup::Synthetic15e7 => "N = 1.5*10^7",
            DatasetGroup::Glove => "Sparse GloVe",
        }
    }

    /// Full-scale row count.
    pub fn full_rows(self) -> usize {
        match self {
            DatasetGroup::Synthetic05e7 => 5_000_000,
            DatasetGroup::Synthetic1e7 => 10_000_000,
            DatasetGroup::Synthetic15e7 => 15_000_000,
            DatasetGroup::Glove => 2_000_000,
        }
    }
}

/// How a dataset's non-zeros are distributed (Table III's
/// "Distribution" column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetKind {
    /// Uniform nnz/row.
    Uniform,
    /// Left-skewed `Γ(3, 4/3)` nnz/row.
    Gamma,
    /// GloVe-like sparsified embeddings.
    Glove,
}

impl DatasetKind {
    /// Table III label.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Uniform => "Uniform",
            DatasetKind::Gamma => "Gamma(3, 4/3)",
            DatasetKind::Glove => "Sparsified GloVe",
        }
    }
}

/// One of the 19 evaluation matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Short unique name, e.g. `"uniform-0.5e7-20nnz-m512"`.
    pub name: &'static str,
    /// Figure panel this matrix belongs to.
    pub group: DatasetGroup,
    /// Non-zero distribution.
    pub kind: DatasetKind,
    /// Full-scale rows (Table III).
    pub full_rows: usize,
    /// Embedding dimensionality `M`.
    pub num_cols: usize,
    /// Average non-zeros per row.
    pub avg_nnz: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the matrix with rows divided by `scale_divisor`
    /// (`1` = full Table III size). Density per row is unchanged, so
    /// performance and accuracy shapes are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `scale_divisor == 0`.
    pub fn generate(&self, scale_divisor: usize) -> Csr {
        assert!(scale_divisor > 0, "scale divisor must be positive");
        let rows = (self.full_rows / scale_divisor).max(64);
        match self.kind {
            DatasetKind::Uniform => SyntheticConfig {
                num_rows: rows,
                num_cols: self.num_cols,
                avg_nnz_per_row: self.avg_nnz,
                distribution: NnzDistribution::Uniform,
                seed: self.seed,
            }
            .generate(),
            DatasetKind::Gamma => SyntheticConfig {
                num_rows: rows,
                num_cols: self.num_cols,
                avg_nnz_per_row: self.avg_nnz,
                distribution: NnzDistribution::table3_gamma(),
                seed: self.seed,
            }
            .generate(),
            DatasetKind::Glove => glove_like(rows, self.seed),
        }
    }

    /// Full-scale nnz estimate (rows × average density).
    pub fn full_nnz_estimate(&self) -> u64 {
        self.full_rows as u64 * self.avg_nnz as u64
    }
}

/// All 19 Table III matrices: 12 uniform (3 sizes × {20, 40} nnz ×
/// {512, 1024} M), 6 Γ (3 sizes × {20, 40} nnz, M = 1024), 1 GloVe-like.
pub fn table3_specs() -> Vec<DatasetSpec> {
    use DatasetGroup::*;
    use DatasetKind::*;
    let mut specs = Vec::with_capacity(19);
    let sizes: [(DatasetGroup, usize); 3] = [
        (Synthetic05e7, 5_000_000),
        (Synthetic1e7, 10_000_000),
        (Synthetic15e7, 15_000_000),
    ];
    let mut seed = 100u64;
    for (group, rows) in sizes {
        for avg in [20usize, 40] {
            for m in [512usize, 1024] {
                specs.push(DatasetSpec {
                    name: uniform_name(rows, avg, m),
                    group,
                    kind: Uniform,
                    full_rows: rows,
                    num_cols: m,
                    avg_nnz: avg,
                    seed,
                });
                seed += 1;
            }
        }
    }
    for (group, rows) in sizes {
        for avg in [20usize, 40] {
            specs.push(DatasetSpec {
                name: gamma_name(rows, avg),
                group,
                kind: Gamma,
                full_rows: rows,
                num_cols: 1024,
                avg_nnz: avg,
                seed,
            });
            seed += 1;
        }
    }
    specs.push(DatasetSpec {
        name: "glove-0.2e7",
        group: DatasetGroup::Glove,
        kind: DatasetKind::Glove,
        full_rows: 2_000_000,
        num_cols: 512,
        avg_nnz: 18,
        seed,
    });
    specs
}

/// One representative matrix per figure panel (used by the accuracy and
/// speedup experiments, which the paper reports per group). Synthetic
/// groups are represented by their left-skewed Γ matrix (the harder
/// case for row tracking); the GloVe group by its only member.
pub fn group_representatives() -> Vec<DatasetSpec> {
    let specs = table3_specs();
    DatasetGroup::ALL
        .iter()
        .map(|g| {
            specs
                .iter()
                .find(|s| s.group == *g && s.kind == DatasetKind::Gamma)
                .or_else(|| specs.iter().find(|s| s.group == *g))
                .copied()
                // invariant: the group list is derived from the spec table, so a spec exists
                .expect("every group has at least one spec")
        })
        .collect()
}

fn uniform_name(rows: usize, avg: usize, m: usize) -> &'static str {
    // Static names keep DatasetSpec Copy; enumerate the 12 combinations.
    match (rows, avg, m) {
        (5_000_000, 20, 512) => "uniform-0.5e7-20nnz-m512",
        (5_000_000, 20, 1024) => "uniform-0.5e7-20nnz-m1024",
        (5_000_000, 40, 512) => "uniform-0.5e7-40nnz-m512",
        (5_000_000, 40, 1024) => "uniform-0.5e7-40nnz-m1024",
        (10_000_000, 20, 512) => "uniform-1e7-20nnz-m512",
        (10_000_000, 20, 1024) => "uniform-1e7-20nnz-m1024",
        (10_000_000, 40, 512) => "uniform-1e7-40nnz-m512",
        (10_000_000, 40, 1024) => "uniform-1e7-40nnz-m1024",
        (15_000_000, 20, 512) => "uniform-1.5e7-20nnz-m512",
        (15_000_000, 20, 1024) => "uniform-1.5e7-20nnz-m1024",
        (15_000_000, 40, 512) => "uniform-1.5e7-40nnz-m512",
        (15_000_000, 40, 1024) => "uniform-1.5e7-40nnz-m1024",
        // invariant: callers pass only combinations present in the spec table
        _ => unreachable!("unknown uniform combination"),
    }
}

fn gamma_name(rows: usize, avg: usize) -> &'static str {
    match (rows, avg) {
        (5_000_000, 20) => "gamma-0.5e7-20nnz",
        (5_000_000, 40) => "gamma-0.5e7-40nnz",
        (10_000_000, 20) => "gamma-1e7-20nnz",
        (10_000_000, 40) => "gamma-1e7-40nnz",
        (15_000_000, 20) => "gamma-1.5e7-20nnz",
        (15_000_000, 40) => "gamma-1.5e7-40nnz",
        // invariant: callers pass only combinations present in the spec table
        _ => unreachable!("unknown gamma combination"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_19_matrices_like_table3() {
        let specs = table3_specs();
        assert_eq!(specs.len(), 19);
        let uniform = specs
            .iter()
            .filter(|s| s.kind == DatasetKind::Uniform)
            .count();
        let gamma = specs
            .iter()
            .filter(|s| s.kind == DatasetKind::Gamma)
            .count();
        let glove = specs
            .iter()
            .filter(|s| s.kind == DatasetKind::Glove)
            .count();
        assert_eq!((uniform, gamma, glove), (12, 6, 1));
    }

    #[test]
    fn names_are_unique() {
        let specs = table3_specs();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn full_nnz_matches_table3_ranges() {
        // Uniform N = 10^7, 20-40 avg nnz -> 2*10^8 to 4*10^8 nnz.
        let specs = table3_specs();
        for s in specs
            .iter()
            .filter(|s| s.group == DatasetGroup::Synthetic1e7 && s.kind == DatasetKind::Uniform)
        {
            let nnz = s.full_nnz_estimate();
            assert!(
                (200_000_000..=400_000_000).contains(&nnz),
                "{}: {nnz}",
                s.name
            );
        }
    }

    #[test]
    fn generate_scales_rows_not_density() {
        let spec = table3_specs()[0];
        let m = spec.generate(1000);
        assert_eq!(m.num_rows(), spec.full_rows / 1000);
        let stats = m.row_stats();
        assert!((stats.mean_nnz - spec.avg_nnz as f64).abs() < 2.0);
    }

    #[test]
    fn group_representatives_cover_all_panels() {
        let reps = group_representatives();
        assert_eq!(reps.len(), 4);
        for (rep, group) in reps.iter().zip(DatasetGroup::ALL) {
            assert_eq!(rep.group, group);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = table3_specs()[3];
        assert_eq!(spec.generate(1000), spec.generate(1000));
    }
}
