//! Plain-text table rendering for experiment output (markdown +
//! CSV, no external dependencies).

use std::fmt::Write as _;

/// A simple column-aligned table that renders to markdown or CSV.
///
/// # Example
///
/// ```
/// use tkspmv_eval::report::Table;
///
/// let mut t = Table::new(vec!["design", "speedup"]);
/// t.row(vec!["20b".into(), "104x".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| 20b"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a column-aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting beyond commas-to-semicolons; cells are
    /// numeric or simple labels by construction).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| s.replace(',', ";");
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` significant decimal places.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a speedup factor like the paper's figures (`104x`).
pub fn fspeedup(v: f64) -> String {
    if v >= 10.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

/// Formats a byte count in GB with one decimal.
pub fn fgb(bytes: u64) -> String {
    format!("{:.2} GB", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a,b".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\na;b,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.94232, 3), "0.942");
        assert_eq!(fspeedup(104.2), "104x");
        assert_eq!(fspeedup(2.04), "2.0x");
        assert_eq!(fgb(1_700_000_000), "1.70 GB");
    }
}
