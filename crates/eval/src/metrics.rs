//! Ranking quality metrics (§V-D): Precision, Kendall's τ, NDCG.

use std::collections::HashMap;

/// Precision@K: fraction of the true Top-K present in the retrieved
/// list, irrespective of order.
///
/// # Example
///
/// ```
/// use tkspmv_eval::metrics::precision_at_k;
///
/// let p = precision_at_k(&[1, 2, 3, 9], &[1, 2, 3, 4]);
/// assert_eq!(p, 0.75);
/// ```
pub fn precision_at_k(retrieved: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    // Set semantics on both sides: a Top-K list has no duplicates, but
    // the metric stays total (and bounded) for any input.
    let truth_set: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let retrieved_set: std::collections::HashSet<u32> = retrieved.iter().copied().collect();
    let hits = retrieved_set.intersection(&truth_set).count();
    hits as f64 / truth_set.len() as f64
}

/// Kendall's τ between the retrieved ordering and the true ordering,
/// computed over the items common to both lists.
///
/// Returns a value in `[-1, 1]`; 1 means the relative order of every
/// common pair agrees. Lists sharing fewer than two items score 1
/// (no pair can disagree). Out-of-order retrieval is penalised even when
/// Precision is perfect, which is exactly why the paper reports it.
///
/// # Example
///
/// ```
/// use tkspmv_eval::metrics::kendall_tau;
///
/// assert_eq!(kendall_tau(&[1, 2, 3], &[1, 2, 3]), 1.0);
/// assert_eq!(kendall_tau(&[3, 2, 1], &[1, 2, 3]), -1.0);
/// ```
pub fn kendall_tau(retrieved: &[u32], truth: &[u32]) -> f64 {
    // First occurrence defines an item's rank on both sides.
    let mut truth_rank: HashMap<u32, usize> = HashMap::new();
    for (r, &i) in truth.iter().enumerate() {
        truth_rank.entry(i).or_insert(r);
    }
    // Ranks (in truth order) of the common items, in retrieved order.
    let mut seen = std::collections::HashSet::new();
    let common: Vec<usize> = retrieved
        .iter()
        .filter(|&&i| seen.insert(i))
        .filter_map(|i| truth_rank.get(i).copied())
        .collect();
    let n = common.len();
    if n < 2 {
        return 1.0;
    }
    // All ranks are distinct, so tau = 1 - 2 * inversions / C(n, 2),
    // with inversions counted in O(n log n) by merge sort.
    let total_pairs = (n * (n - 1) / 2) as f64;
    let discordant = count_inversions(&mut common.clone(), &mut vec![0; n]) as f64;
    1.0 - 2.0 * discordant / total_pairs
}

/// Counts inversions (pairs `i < j` with `v[i] > v[j]`) by merge sort.
fn count_inversions(v: &mut [usize], scratch: &mut [usize]) -> u64 {
    let n = v.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let mut inv = {
        let (lo, hi) = v.split_at_mut(mid);
        count_inversions(lo, scratch) + count_inversions(hi, scratch)
    };
    // Merge, counting cross inversions.
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        if v[i] <= v[j] {
            scratch[k] = v[i];
            i += 1;
        } else {
            // v[i..mid] are all greater than v[j].
            inv += (mid - i) as u64;
            scratch[k] = v[j];
            j += 1;
        }
        k += 1;
    }
    scratch[k..k + (mid - i)].copy_from_slice(&v[i..mid]);
    let k = k + (mid - i);
    scratch[k..k + (n - j)].copy_from_slice(&v[j..n]);
    v.copy_from_slice(&scratch[..n]);
    inv
}

/// NDCG@K with graded relevance: the relevance of a retrieved item is
/// its true similarity score (0 for items outside the true Top-K), with
/// the standard `1 / log2(rank + 2)` discount; normalised by the ideal
/// ordering's DCG.
///
/// # Example
///
/// ```
/// use tkspmv_eval::metrics::ndcg;
///
/// let truth = [(7u32, 1.0), (3, 0.5)];
/// assert!((ndcg(&[7, 3], &truth) - 1.0).abs() < 1e-12);
/// assert!(ndcg(&[3, 7], &truth) < 1.0);
/// ```
pub fn ndcg(retrieved: &[u32], truth: &[(u32, f64)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let mut gain: HashMap<u32, f64> = HashMap::new();
    for &(i, g) in truth {
        gain.entry(i).or_insert(g);
    }
    // Each truth item's gain is consumed at most once, so DCG cannot
    // exceed IDCG even for degenerate retrieved lists with duplicates.
    let mut remaining = gain.clone();
    let dcg: f64 = retrieved
        .iter()
        .enumerate()
        .map(|(rank, i)| remaining.remove(i).unwrap_or(0.0) / ((rank as f64) + 2.0).log2())
        .sum();
    // Ideal DCG: truth sorted by score descending (it already is if it
    // comes from an oracle, but do not rely on it).
    let mut ideal: Vec<f64> = gain.values().copied().collect();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .iter()
        .enumerate()
        .map(|(rank, s)| s / ((rank as f64) + 2.0).log2())
        .sum();
    if idcg == 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// All three §V-D metrics for one retrieved list against the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingQuality {
    /// Precision@K.
    pub precision: f64,
    /// Kendall's τ.
    pub kendall_tau: f64,
    /// NDCG@K.
    pub ndcg: f64,
}

impl RankingQuality {
    /// Scores `retrieved` against the oracle's `(index, score)` ranking.
    pub fn score(retrieved: &[u32], truth: &[(u32, f64)]) -> Self {
        let truth_idx: Vec<u32> = truth.iter().map(|&(i, _)| i).collect();
        Self {
            precision: precision_at_k(retrieved, &truth_idx),
            kendall_tau: kendall_tau(retrieved, &truth_idx),
            ndcg: ndcg(retrieved, truth),
        }
    }

    /// Element-wise mean of several measurements.
    pub fn mean(items: &[RankingQuality]) -> Self {
        let n = items.len().max(1) as f64;
        Self {
            precision: items.iter().map(|q| q.precision).sum::<f64>() / n,
            kendall_tau: items.iter().map(|q| q.kendall_tau).sum::<f64>() / n,
            ndcg: items.iter().map(|q| q.ndcg).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_counts_set_overlap() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(precision_at_k(&[3, 2, 1], &[1, 2, 3]), 1.0);
        assert_eq!(precision_at_k(&[4, 5, 6], &[1, 2, 3]), 0.0);
        assert_eq!(precision_at_k(&[], &[1, 2]), 0.0);
        assert_eq!(precision_at_k(&[1], &[]), 1.0);
    }

    #[test]
    fn kendall_counts_pair_inversions() {
        // One swap in 4 items: 5 concordant, 1 discordant -> 4/6.
        let tau = kendall_tau(&[0, 2, 1, 3], &[0, 1, 2, 3]);
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    /// Reference O(n^2) tau for differential testing.
    fn kendall_reference(common: &[usize]) -> f64 {
        let n = common.len();
        if n < 2 {
            return 1.0;
        }
        let mut conc = 0i64;
        let mut disc = 0i64;
        for a in 0..n {
            for b in (a + 1)..n {
                if common[a] < common[b] {
                    conc += 1;
                } else {
                    disc += 1;
                }
            }
        }
        (conc - disc) as f64 / (n * (n - 1) / 2) as f64
    }

    #[test]
    fn merge_sort_tau_matches_quadratic_reference() {
        // Deterministic pseudo-random permutations of various sizes.
        let mut state = 7u64;
        for n in [2usize, 3, 5, 17, 64, 257] {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                perm.swap(i, (state >> 33) as usize % (i + 1));
            }
            let truth: Vec<u32> = (0..n as u32).collect();
            let fast = kendall_tau(&perm, &truth);
            let slow = kendall_reference(&perm.iter().map(|&x| x as usize).collect::<Vec<_>>());
            assert!((fast - slow).abs() < 1e-12, "n = {n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn kendall_ignores_missing_items() {
        // Items 9, 8 are not in truth: order of {1, 2} still perfect.
        assert_eq!(kendall_tau(&[9, 1, 8, 2], &[1, 2, 3]), 1.0);
        // Fewer than 2 common items.
        assert_eq!(kendall_tau(&[9, 1], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn ndcg_penalises_low_placement_of_high_gain() {
        let truth = [(0u32, 1.0), (1, 0.9), (2, 0.1)];
        let perfect = ndcg(&[0, 1, 2], &truth);
        let swapped = ndcg(&[2, 1, 0], &truth);
        assert!((perfect - 1.0).abs() < 1e-12);
        assert!(swapped < perfect);
        // Missing the top item is worse than misordering it.
        let missing = ndcg(&[1, 2, 9], &truth);
        assert!(missing < ndcg(&[2, 1, 0], &truth) + 1e-12);
    }

    #[test]
    fn ndcg_unordered_truth_is_normalised_correctly() {
        let truth = [(1u32, 0.5), (0, 1.0)]; // not sorted by score
        assert!((ndcg(&[0, 1], &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quality_mean_averages_components() {
        let a = RankingQuality {
            precision: 1.0,
            kendall_tau: 0.5,
            ndcg: 0.8,
        };
        let b = RankingQuality {
            precision: 0.5,
            kendall_tau: 1.0,
            ndcg: 0.6,
        };
        let m = RankingQuality::mean(&[a, b]);
        assert_eq!(m.precision, 0.75);
        assert_eq!(m.kendall_tau, 0.75);
        assert!((m.ndcg - 0.7).abs() < 1e-12);
    }

    #[test]
    fn score_combines_all_metrics() {
        let truth = [(0u32, 1.0), (1, 0.5)];
        let q = RankingQuality::score(&[0, 1], &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.kendall_tau, 1.0);
        assert!((q.ndcg - 1.0).abs() < 1e-12);
    }
}
