//! Figure 5: execution-time speedup of GPU and FPGA designs over the
//! CPU baseline, per dataset group (K = 100).
//!
//! The CPU baseline is *measured* on the host (this reproduction's
//! stand-in for the paper's dual Xeon 6248 + `sparse_dot_topn`); GPU and
//! FPGA times come from their calibrated models, evaluated on the same
//! matrix. All engines run through the [`tkspmv::TopKBackend`] trait —
//! the experiment never names a concrete architecture; it races whatever
//! [`crate::backends::figure5_roster`] returns against the measured CPU
//! denominator, so the speedup ratios are directly comparable and
//! scale-stable.
//!
//! Trait uniformity has one deliberate cost: every backend *executes*
//! its query functionally (the GPU model really computes and sorts its
//! output vector) even though only the modelled timings feed the table.
//! That is the point — the experiment exercises exactly the code path a
//! deployment would run, rather than a hand-wired analytic shortcut —
//! and at the default `scale_divisor` it is cheap; for full-scale runs
//! the zero-cost-sort columns are already derived from the full GPU runs
//! instead of re-executing them.

use tkspmv_sparse::gen::query_vector;

use crate::backends;
use crate::datasets::{group_representatives, DatasetGroup};
use crate::report::{fnum, fspeedup, Table};
use crate::{EvalError, ExpConfig};

/// The K used by Figure 5.
pub const FIGURE5_K: usize = 100;

/// One modelled architecture's result on one dataset group.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpeedup {
    /// Backend name (see [`crate::backends`] for the roster).
    pub backend: String,
    /// Kernel seconds billed to this architecture.
    pub seconds: f64,
    /// Speedup over the measured CPU baseline.
    pub speedup: f64,
}

/// Speedups of every architecture for one dataset group.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Dataset group (figure panel).
    pub group: DatasetGroup,
    /// Matrix rows actually processed.
    pub rows: usize,
    /// Non-zeros processed.
    pub nnz: u64,
    /// Measured CPU baseline seconds (best of `queries` runs).
    pub cpu_seconds: f64,
    /// One entry per roster backend in roster order, plus a derived
    /// `…-spmv` entry (zero-cost-sort billing) immediately before each
    /// full GPU entry.
    pub arch: Vec<ArchSpeedup>,
}

impl SpeedupRow {
    /// Speedup of the named backend.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingBackend`] naming the roster this row holds
    /// when `backend` is not in it.
    pub fn speedup_of(&self, backend: &str) -> Result<f64, EvalError> {
        self.arch
            .iter()
            .find(|a| a.backend == backend)
            .map(|a| a.speedup)
            .ok_or_else(|| {
                EvalError::missing_backend(
                    backend,
                    self.arch.iter().map(|a| a.backend.clone()).collect(),
                )
            })
    }

    /// The FPGA 20-bit design's throughput in nnz/second.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingBackend`] if `fpga-20b` is not in the roster.
    pub fn fpga20_nnz_per_sec(&self) -> Result<f64, EvalError> {
        let speedup = self.speedup_of("fpga-20b")?;
        Ok(self.nnz as f64 / (self.cpu_seconds / speedup))
    }
}

/// Runs the Figure 5 experiment over the four dataset groups, racing
/// the roster of modelled backends against the measured CPU baseline.
///
/// # Errors
///
/// [`EvalError::Engine`] if any backend fails to prepare a matrix or
/// answer a query.
pub fn run(config: &ExpConfig) -> Result<Vec<SpeedupRow>, EvalError> {
    let cpu = backends::cpu();
    let roster = backends::figure5_roster();
    let mut rows = Vec::new();
    for spec in group_representatives() {
        let csr = spec.generate(config.scale_divisor);

        // CPU: wall-clock, best of `queries` runs (steady-state timing).
        let prepared = cpu.prepare(&csr)?;
        let mut cpu_seconds = f64::INFINITY;
        for q in 0..config.queries.max(1) {
            let x = query_vector(csr.num_cols(), config.seed + q as u64);
            let out = cpu.query(&prepared, &x, FIGURE5_K)?;
            cpu_seconds = cpu_seconds.min(out.perf.seconds);
        }

        // Every modelled backend: same matrix, same query, one code
        // path. The roster lists same-family backends adjacently, so one
        // prepared matrix is held at a time and reused while the family
        // matches (both GPU precisions share one prepared CSR instead of
        // cloning the collection per variant) — peak memory stays at a
        // single prepared encoding, as with hand-wired per-engine code.
        let x = query_vector(csr.num_cols(), config.seed);
        let mut arch = Vec::new();
        let mut current: Option<(String, tkspmv::PreparedMatrix)> = None;
        for backend in &roster {
            let family = backend.family();
            if current.as_ref().is_none_or(|(f, _)| *f != family) {
                current = Some((family.clone(), backend.prepare(&csr)?));
            }
            // invariant: filled by the branch directly above
            let prepared = &current.as_ref().expect("just prepared").1;
            let out = backend.query(prepared, &x, FIGURE5_K)?;
            // GPU runs also yield the paper's idealised zero-cost-sort
            // column for free: same functional result, SpMV-only billing
            // (re-running a `gpu_spmv_only` backend would recompute the
            // identical ranking just to report a different time).
            if let Some((spmv_seconds, _, false)) = out.stats.gpu_timings() {
                arch.push(ArchSpeedup {
                    backend: format!("{}-spmv", backend.name()),
                    seconds: spmv_seconds,
                    speedup: cpu_seconds / spmv_seconds,
                });
            }
            arch.push(ArchSpeedup {
                backend: backend.name(),
                seconds: out.perf.kernel_seconds,
                speedup: cpu_seconds / out.perf.kernel_seconds,
            });
        }

        rows.push(SpeedupRow {
            group: spec.group,
            rows: csr.num_rows(),
            nnz: csr.nnz() as u64,
            cpu_seconds,
            arch,
        });
    }
    Ok(rows)
}

/// Renders the Figure 5 panels as a table (one column per backend).
pub fn to_table(rows: &[SpeedupRow]) -> Table {
    let mut header = vec!["Dataset".to_string(), "CPU baseline (ms)".to_string()];
    if let Some(first) = rows.first() {
        header.extend(first.arch.iter().map(|a| a.backend.clone()));
    }
    let mut t = Table::new(header);
    for r in rows {
        let mut cells = vec![r.group.label().to_string(), fnum(r.cpu_seconds * 1e3, 2)];
        cells.extend(r.arch.iter().map(|a| fspeedup(a.speedup)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Result<Vec<SpeedupRow>, EvalError> {
        run(&ExpConfig::smoke_test())
    }

    #[test]
    fn figure5_shape_fpga_beats_idealised_gpu() -> Result<(), EvalError> {
        // The paper's headline: FPGA 20b is ~2x the GPU F32 SpMV-only
        // performance. Assert who-wins, not the exact factor.
        for r in rows()? {
            assert!(
                r.speedup_of("fpga-20b")? > r.speedup_of("gpu-f32-spmv")?,
                "{:?}: FPGA 20b {:.1}x vs GPU {:.1}x",
                r.group,
                r.speedup_of("fpga-20b")?,
                r.speedup_of("gpu-f32-spmv")?
            );
        }
        Ok(())
    }

    #[test]
    fn figure5_shape_precision_ordering() -> Result<(), EvalError> {
        // Reduced precision packs more nnz per packet -> faster.
        for r in rows()? {
            assert!(
                r.speedup_of("fpga-20b")? >= r.speedup_of("fpga-25b")?,
                "{:?}: 20b >= 25b",
                r.group
            );
            assert!(
                r.speedup_of("fpga-25b")? >= r.speedup_of("fpga-32b")?,
                "{:?}: 25b >= 32b",
                r.group
            );
            // Fixed 32b beats float (higher clock).
            assert!(
                r.speedup_of("fpga-32b")? >= r.speedup_of("fpga-f32")?,
                "{:?}: 32b >= F32",
                r.group
            );
        }
        Ok(())
    }

    #[test]
    fn figure5_shape_sorting_hurts_gpu() -> Result<(), EvalError> {
        for r in rows()? {
            assert!(r.speedup_of("gpu-f32")? < r.speedup_of("gpu-f32-spmv")?);
            assert!(r.speedup_of("gpu-f16")? < r.speedup_of("gpu-f16-spmv")?);
        }
        Ok(())
    }

    #[test]
    fn missing_backend_is_a_typed_error() -> Result<(), EvalError> {
        let rows = rows()?;
        let err = rows[0].speedup_of("tpu-v9").unwrap_err();
        match &err {
            EvalError::MissingBackend { backend, roster } => {
                assert_eq!(backend, "tpu-v9");
                assert!(roster.iter().any(|b| b == "fpga-20b"), "{roster:?}");
            }
            other => panic!("expected MissingBackend, got {other:?}"),
        }
        assert!(err.to_string().contains("tpu-v9"));
        Ok(())
    }

    #[test]
    fn table_renders_four_panels_with_roster_columns() -> Result<(), EvalError> {
        let rows = rows()?;
        let t = to_table(&rows);
        assert_eq!(t.len(), 4);
        assert!(t.to_markdown().contains("fpga-20b"));
        // Throughput helper stays usable for the binary's summary line.
        assert!(rows[0].fpga20_nnz_per_sec()? > 0.0);
        Ok(())
    }
}
