//! Figure 5: execution-time speedup of GPU and FPGA designs over the
//! CPU baseline, per dataset group (K = 100).
//!
//! The CPU baseline is *measured* on the host (this reproduction's
//! stand-in for the paper's dual Xeon 6248 + `sparse_dot_topn`); GPU and
//! FPGA times come from their calibrated models, evaluated on the same
//! matrix. All three process identical data, so the speedup ratios are
//! directly comparable and scale-stable.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision};
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::query_vector;

use crate::datasets::{group_representatives, DatasetGroup};
use crate::report::{fnum, fspeedup, Table};
use crate::ExpConfig;

/// The K used by Figure 5.
pub const FIGURE5_K: usize = 100;

/// Speedups of every architecture for one dataset group.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Dataset group (figure panel).
    pub group: DatasetGroup,
    /// Matrix rows / non-zeros actually processed.
    pub rows: usize,
    /// Non-zeros processed.
    pub nnz: u64,
    /// Measured CPU baseline seconds.
    pub cpu_seconds: f64,
    /// GPU F32, SpMV only (idealised zero-cost sort): speedup vs CPU.
    pub gpu_f32_spmv_only: f64,
    /// GPU F32 including the sort.
    pub gpu_f32_topk: f64,
    /// GPU F16, SpMV only.
    pub gpu_f16_spmv_only: f64,
    /// GPU F16 including the sort.
    pub gpu_f16_topk: f64,
    /// FPGA speedups for 20b / 25b / 32b / F32 designs.
    pub fpga: [f64; 4],
}

impl SpeedupRow {
    /// The FPGA 20-bit design's throughput in nnz/second.
    pub fn fpga20_nnz_per_sec(&self) -> f64 {
        self.nnz as f64 / (self.cpu_seconds / self.fpga[0])
    }
}

/// Runs the Figure 5 experiment over the four dataset groups.
pub fn run(config: &ExpConfig) -> Vec<SpeedupRow> {
    let cpu = CpuTopK::with_all_cores();
    let gpu = GpuModel::tesla_p100();
    let mut rows = Vec::new();
    for spec in group_representatives() {
        let csr = spec.generate(config.scale_divisor);
        let nnz = csr.nnz() as u64;
        let n_rows = csr.num_rows() as u64;

        // CPU: wall-clock, best of `queries` runs (steady-state timing).
        let mut cpu_seconds = f64::INFINITY;
        for q in 0..config.queries.max(1) {
            let x = query_vector(csr.num_cols(), config.seed + q as u64);
            let run = cpu.run_timed(&csr, x.as_slice(), FIGURE5_K);
            cpu_seconds = cpu_seconds.min(run.seconds);
        }

        // GPU: analytic model on the same matrix.
        let g32 = gpu.spmv_seconds(nnz, n_rows, GpuPrecision::F32);
        let g16 = gpu.spmv_seconds(nnz, n_rows, GpuPrecision::F16);
        let sort = gpu.sort_seconds(n_rows);

        // FPGA: model kernel time for each design on the same matrix.
        let fpga: Vec<f64> = Precision::FPGA_DESIGNS
            .iter()
            .map(|&p| {
                let acc = Accelerator::builder()
                    .precision(p)
                    .cores(32)
                    .k(8)
                    .build()
                    .expect("paper design builds");
                let m = acc.load_matrix(&csr).expect("paper design loads");
                let x = query_vector(csr.num_cols(), config.seed);
                let out = acc.query(&m, &x, FIGURE5_K).expect("query runs");
                cpu_seconds / out.perf.kernel_seconds
            })
            .collect();

        rows.push(SpeedupRow {
            group: spec.group,
            rows: csr.num_rows(),
            nnz,
            cpu_seconds,
            gpu_f32_spmv_only: cpu_seconds / g32,
            gpu_f32_topk: cpu_seconds / (g32 + sort),
            gpu_f16_spmv_only: cpu_seconds / g16,
            gpu_f16_topk: cpu_seconds / (g16 + sort),
            fpga: [fpga[0], fpga[1], fpga[2], fpga[3]],
        });
    }
    rows
}

/// Renders the Figure 5 panels as a table.
pub fn to_table(rows: &[SpeedupRow]) -> Table {
    let mut t = Table::new(vec![
        "Dataset",
        "CPU baseline (ms)",
        "GPU F32 SpMV",
        "GPU F32 Top-K",
        "GPU F16 SpMV",
        "GPU F16 Top-K",
        "FPGA 20b",
        "FPGA 25b",
        "FPGA 32b",
        "FPGA F32",
    ]);
    for r in rows {
        t.row(vec![
            r.group.label().to_string(),
            fnum(r.cpu_seconds * 1e3, 2),
            fspeedup(r.gpu_f32_spmv_only),
            fspeedup(r.gpu_f32_topk),
            fspeedup(r.gpu_f16_spmv_only),
            fspeedup(r.gpu_f16_topk),
            fspeedup(r.fpga[0]),
            fspeedup(r.fpga[1]),
            fspeedup(r.fpga[2]),
            fspeedup(r.fpga[3]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SpeedupRow> {
        run(&ExpConfig::smoke_test())
    }

    #[test]
    fn figure5_shape_fpga_beats_idealised_gpu() {
        // The paper's headline: FPGA 20b is ~2x the GPU F32 SpMV-only
        // performance. Assert who-wins, not the exact factor.
        for r in rows() {
            assert!(
                r.fpga[0] > r.gpu_f32_spmv_only,
                "{:?}: FPGA 20b {:.1}x vs GPU {:.1}x",
                r.group,
                r.fpga[0],
                r.gpu_f32_spmv_only
            );
        }
    }

    #[test]
    fn figure5_shape_precision_ordering() {
        // Reduced precision packs more nnz per packet -> faster.
        for r in rows() {
            assert!(r.fpga[0] >= r.fpga[1], "{:?}: 20b >= 25b", r.group);
            assert!(r.fpga[1] >= r.fpga[2], "{:?}: 25b >= 32b", r.group);
            // Fixed 32b beats float (higher clock).
            assert!(r.fpga[2] >= r.fpga[3], "{:?}: 32b >= F32", r.group);
        }
    }

    #[test]
    fn figure5_shape_sorting_hurts_gpu() {
        for r in rows() {
            assert!(r.gpu_f32_topk < r.gpu_f32_spmv_only);
            assert!(r.gpu_f16_topk < r.gpu_f16_spmv_only);
        }
    }

    #[test]
    fn table_renders_four_panels() {
        let t = to_table(&rows());
        assert_eq!(t.len(), 4);
    }
}
