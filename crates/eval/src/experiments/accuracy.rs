//! Figure 7: Top-K accuracy (Precision, Kendall's τ, NDCG) of the FPGA
//! designs and the GPU F16 baseline against the exact CPU result.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision};
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::query_vector;
use tkspmv_sparse::Csr;

use crate::datasets::{group_representatives, DatasetGroup};
use crate::metrics::RankingQuality;
use crate::report::{fnum, Table};
use crate::ExpConfig;

/// The K sweep of Figure 7.
pub const FIGURE7_KS: [usize; 6] = [8, 16, 32, 50, 75, 100];

/// Architectures scored by Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// FPGA design at a given precision.
    Fpga(Precision),
    /// GPU with half-precision arithmetic.
    GpuF16,
}

impl Architecture {
    /// The four series of Figure 7.
    pub const ALL: [Architecture; 4] = [
        Architecture::Fpga(Precision::Fixed20),
        Architecture::Fpga(Precision::Fixed32),
        Architecture::Fpga(Precision::Float32),
        Architecture::GpuF16,
    ];

    /// Series label as in the figure legend.
    pub fn label(self) -> String {
        match self {
            Architecture::Fpga(p) => format!("FPGA {}", p.label()),
            Architecture::GpuF16 => "GPU F16".to_string(),
        }
    }
}

/// Mean ranking quality of one architecture at one K on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Dataset group (figure panel).
    pub group: DatasetGroup,
    /// Requested Top-K.
    pub k: usize,
    /// Architecture.
    pub arch: Architecture,
    /// Mean metrics over the configured number of queries.
    pub quality: RankingQuality,
}

/// Runs the Figure 7 sweep: 4 groups × 6 K values × 4 architectures.
pub fn run(config: &ExpConfig) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for spec in group_representatives() {
        let csr = spec.generate(config.scale_divisor);
        for &k in &FIGURE7_KS {
            for arch in Architecture::ALL {
                let mut samples = Vec::with_capacity(config.queries);
                for q in 0..config.queries.max(1) {
                    let x = query_vector(csr.num_cols(), config.seed + 31 * q as u64);
                    let truth = exact_topk(&csr, x.as_slice(), k);
                    let retrieved = run_arch(arch, &csr, x.as_slice(), k);
                    samples.push(RankingQuality::score(&retrieved, truth.entries()));
                }
                rows.push(AccuracyRow {
                    group: spec.group,
                    k,
                    arch,
                    quality: RankingQuality::mean(&samples),
                });
            }
        }
    }
    rows
}

fn run_arch(arch: Architecture, csr: &Csr, x: &[f32], k: usize) -> Vec<u32> {
    match arch {
        Architecture::Fpga(precision) => {
            let acc = Accelerator::builder()
                .precision(precision)
                .cores(32)
                .k(8)
                .build()
                .expect("paper design builds");
            let m = acc.load_matrix(csr).expect("matrix loads");
            let x = tkspmv_sparse::DenseVector::from_values(x.to_vec());
            acc.query(&m, &x, k).expect("query runs").topk.indices()
        }
        Architecture::GpuF16 => GpuModel::tesla_p100()
            .run(csr, x, k, GpuPrecision::F16)
            .topk
            .indices(),
    }
}

/// Renders the accuracy sweep as a long-format table.
pub fn to_table(rows: &[AccuracyRow]) -> Table {
    let mut t = Table::new(vec![
        "Dataset",
        "K",
        "Architecture",
        "Precision",
        "Kendall tau",
        "NDCG",
    ]);
    for r in rows {
        t.row(vec![
            r.group.label().to_string(),
            r.k.to_string(),
            r.arch.label(),
            fnum(r.quality.precision, 3),
            fnum(r.quality.kendall_tau, 3),
            fnum(r.quality.ndcg, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rows() -> Vec<AccuracyRow> {
        // Full sweep on the smoke-test scale is still 4*6*4 = 96 runs;
        // keep the test fast by restricting to one group via a single
        // representative (index 3 = GloVe, smallest).
        let config = ExpConfig::smoke_test();
        let spec = group_representatives()[3];
        let csr = spec.generate(config.scale_divisor);
        let mut rows = Vec::new();
        for &k in &[8usize, 100] {
            for arch in Architecture::ALL {
                let x = query_vector(csr.num_cols(), 3);
                let truth = exact_topk(&csr, x.as_slice(), k);
                let retrieved = run_arch(arch, &csr, x.as_slice(), k);
                rows.push(AccuracyRow {
                    group: spec.group,
                    k,
                    arch,
                    quality: RankingQuality::score(&retrieved, truth.entries()),
                });
            }
        }
        rows
    }

    #[test]
    fn figure7_shape_high_accuracy_across_the_board() {
        // Paper: precision above 97% everywhere, even for 20-bit.
        for r in small_rows() {
            assert!(
                r.quality.precision > 0.9,
                "{:?} K={}: precision {:.3}",
                r.arch,
                r.k,
                r.quality.precision
            );
        }
    }

    #[test]
    fn figure7_shape_fixed32_at_least_as_good_as_f16() {
        // Paper: "32-bit fixed-point designs provide accuracy above the
        // half-precision floating-point GPU implementation".
        let rows = small_rows();
        for &k in &[8usize, 100] {
            let get = |arch: Architecture| {
                rows.iter()
                    .find(|r| r.k == k && r.arch == arch)
                    .expect("row present")
                    .quality
            };
            let fixed32 = get(Architecture::Fpga(Precision::Fixed32));
            let f16 = get(Architecture::GpuF16);
            assert!(
                fixed32.ndcg >= f16.ndcg - 0.01,
                "K={k}: fixed32 ndcg {:.4} vs f16 {:.4}",
                fixed32.ndcg,
                f16.ndcg
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = small_rows();
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
