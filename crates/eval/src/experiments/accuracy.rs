//! Figure 7: Top-K accuracy (Precision, Kendall's τ, NDCG) of the FPGA
//! designs and the GPU F16 baseline against the exact CPU result.
//!
//! The scored architectures are whatever
//! [`crate::backends::figure7_roster`] returns; each is prepared once
//! per dataset and queried through the [`tkspmv::TopKBackend`] trait
//! across the whole K sweep.

use tkspmv_baselines::cpu::exact_topk;
use tkspmv_sparse::gen::query_vector;

use crate::backends;
use crate::datasets::{group_representatives, DatasetGroup};
use crate::metrics::RankingQuality;
use crate::report::{fnum, Table};
use crate::ExpConfig;

/// The K sweep of Figure 7.
pub const FIGURE7_KS: [usize; 6] = [8, 16, 32, 50, 75, 100];

/// Mean ranking quality of one architecture at one K on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Dataset group (figure panel).
    pub group: DatasetGroup,
    /// Requested Top-K.
    pub k: usize,
    /// Backend name (the figure legend's series).
    pub backend: String,
    /// Mean metrics over the configured number of queries.
    pub quality: RankingQuality,
}

/// Runs the Figure 7 sweep: 4 groups × 6 K values × the roster.
pub fn run(config: &ExpConfig) -> Vec<AccuracyRow> {
    let roster = backends::figure7_roster();
    let queries = config.queries.max(1);
    let mut rows = Vec::new();
    for spec in group_representatives() {
        let csr = spec.generate(config.scale_divisor);
        // The exact oracle depends only on (dataset, K, query) — and the
        // K values are nested, so one full-SpMV oracle at the largest K
        // per query serves every K by truncation. Computing it here
        // (instead of per backend per K) removes the slowest single step
        // of the sweep from both inner loops.
        // invariant: FIGURE7_KS is a non-empty constant
        let max_k = *FIGURE7_KS.iter().max().expect("non-empty K sweep");
        let xs: Vec<_> = (0..queries)
            .map(|q| query_vector(csr.num_cols(), config.seed + 31 * q as u64))
            .collect();
        let full_truths: Vec<_> = xs
            .iter()
            .map(|x| exact_topk(&csr, x.as_slice(), max_k))
            .collect();
        let truths: Vec<Vec<_>> = FIGURE7_KS
            .iter()
            .map(|&k| full_truths.iter().map(|t| t.clone().truncated(k)).collect())
            .collect();
        for backend in &roster {
            // One prepare per (dataset, backend); the whole K sweep and
            // every query reuse it.
            // invariant: experiment driver; a failed prepare invalidates the run, so fail loudly
            let prepared = backend.prepare(&csr).expect("backend prepares");
            for (truth_per_query, &k) in truths.iter().zip(&FIGURE7_KS) {
                let mut samples = Vec::with_capacity(queries);
                for (x, truth) in xs.iter().zip(truth_per_query) {
                    // invariant: experiment driver; a failed query invalidates the run, so fail loudly
                    let out = backend.query(&prepared, x, k).expect("backend query runs");
                    samples.push(RankingQuality::score(&out.topk.indices(), truth.entries()));
                }
                rows.push(AccuracyRow {
                    group: spec.group,
                    k,
                    backend: backend.name(),
                    quality: RankingQuality::mean(&samples),
                });
            }
        }
    }
    rows
}

/// Renders the accuracy sweep as a long-format table.
pub fn to_table(rows: &[AccuracyRow]) -> Table {
    let mut t = Table::new(vec![
        "Dataset",
        "K",
        "Backend",
        "Precision",
        "Kendall tau",
        "NDCG",
    ]);
    for r in rows {
        t.row(vec![
            r.group.label().to_string(),
            r.k.to_string(),
            r.backend.clone(),
            fnum(r.quality.precision, 3),
            fnum(r.quality.kendall_tau, 3),
            fnum(r.quality.ndcg, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rows() -> Vec<AccuracyRow> {
        // Full sweep on the smoke-test scale is still 4*6*4 = 96 runs;
        // keep the test fast by restricting to one group via a single
        // representative (index 3 = GloVe, smallest).
        let config = ExpConfig::smoke_test();
        let spec = group_representatives()[3];
        let csr = spec.generate(config.scale_divisor);
        let mut rows = Vec::new();
        for backend in backends::figure7_roster() {
            let prepared = backend.prepare(&csr).expect("backend prepares");
            for &k in &[8usize, 100] {
                let x = query_vector(csr.num_cols(), 3);
                let truth = exact_topk(&csr, x.as_slice(), k);
                let out = backend.query(&prepared, &x, k).expect("query runs");
                rows.push(AccuracyRow {
                    group: spec.group,
                    k,
                    backend: backend.name(),
                    quality: RankingQuality::score(&out.topk.indices(), truth.entries()),
                });
            }
        }
        rows
    }

    #[test]
    fn figure7_shape_high_accuracy_across_the_board() {
        // Paper: precision above 97% everywhere, even for 20-bit.
        for r in small_rows() {
            assert!(
                r.quality.precision > 0.9,
                "{} K={}: precision {:.3}",
                r.backend,
                r.k,
                r.quality.precision
            );
        }
    }

    #[test]
    fn figure7_shape_fixed32_at_least_as_good_as_f16() {
        // Paper: "32-bit fixed-point designs provide accuracy above the
        // half-precision floating-point GPU implementation".
        let rows = small_rows();
        for &k in &[8usize, 100] {
            let get = |backend: &str| {
                rows.iter()
                    .find(|r| r.k == k && r.backend == backend)
                    .expect("row present")
                    .quality
            };
            let fixed32 = get("fpga-32b");
            let f16 = get("gpu-f16");
            assert!(
                fixed32.ndcg >= f16.ndcg - 0.01,
                "K={k}: fixed32 ndcg {:.4} vs f16 {:.4}",
                fixed32.ndcg,
                f16.ndcg
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = small_rows();
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
