//! Design-choice ablations called out by §IV-B and §IV-C:
//!
//! - **`r` sweep** (rows tracked per packet): the paper claims
//!   `B/4 < r < B/2` saves up to 50% of row-tracking logic with no
//!   accuracy loss. [`run_r_sweep`] measures both sides of that claim —
//!   modelled LUTs and measured ranking quality as `r` shrinks.
//! - **Packet layout design space**: how `B` (and therefore operational
//!   intensity) responds to value width `V` and embedding size `M`
//!   through the §IV-C capacity equation. [`run_layout_sweep`] tabulates
//!   the frontier.

use tkspmv_baselines::cpu::exact_topk;
use tkspmv_fixed::Precision;
use tkspmv_hw::{DesignPoint, ResourceModel};
use tkspmv_sparse::gen::query_vector;
use tkspmv_sparse::PacketLayout;

use crate::backends;
use crate::datasets::group_representatives;
use crate::metrics::RankingQuality;
use crate::report::{fnum, Table};
use crate::ExpConfig;

/// One point of the `r` ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct RSweepRow {
    /// Rows tracked per packet.
    pub r: u32,
    /// Packet capacity `B` for context.
    pub b: u32,
    /// Modelled per-core LUTs.
    pub core_luts: u64,
    /// Ranking quality at K = 100 (mean over queries).
    pub quality: RankingQuality,
    /// Fraction of finished rows dropped by the limit.
    pub dropped_fraction: f64,
}

/// Sweeps `r` from 1 to `B` on the paper's 20-bit design.
pub fn run_r_sweep(config: &ExpConfig) -> Vec<RSweepRow> {
    let spec = group_representatives()[0];
    let csr = spec.generate(config.scale_divisor);
    // invariant: the paper grid (m <= 65536, 20-bit values) always admits a layout
    let layout = PacketLayout::solve(csr.num_cols(), 20).expect("layout fits");
    let b = layout.entries_per_packet();
    let model = ResourceModel::alveo_u280();
    let mut rows = Vec::new();
    for r in [1, b / 8, b / 4, b / 2, b] {
        let r = r.max(1);
        if rows.iter().any(|row: &RSweepRow| row.r == r) {
            continue;
        }
        let backend = backends::fpga_with_rows_per_packet(Precision::Fixed20, Some(r));
        // invariant: experiment driver; a failed prepare invalidates the run, so fail loudly
        let prepared = backend.prepare(&csr).expect("matrix loads");
        let mut samples = Vec::new();
        let mut dropped = 0u64;
        let mut finished = 0u64;
        for q in 0..config.queries.max(1) {
            let x = query_vector(csr.num_cols(), config.seed + 17 * q as u64);
            let truth = exact_topk(&csr, x.as_slice(), 100);
            // invariant: experiment driver; a failed query invalidates the run, so fail loudly
            let out = backend.query(&prepared, &x, 100).expect("query runs");
            samples.push(RankingQuality::score(&out.topk.indices(), truth.entries()));
            let cores = out
                .stats
                .core_stats()
                // invariant: the accelerator backend always reports per-core stats
                .expect("accelerator reports per-core stats");
            dropped += cores.iter().map(|s| s.rows_dropped).sum::<u64>();
            finished += cores
                .iter()
                .map(|s| s.rows_finished + s.rows_dropped)
                .sum::<u64>();
        }
        let design = DesignPoint {
            r,
            ..DesignPoint::paper_design(Precision::Fixed20)
        };
        rows.push(RSweepRow {
            r,
            b,
            core_luts: model.core_usage(&design).lut,
            quality: RankingQuality::mean(&samples),
            dropped_fraction: dropped as f64 / finished.max(1) as f64,
        });
    }
    rows
}

/// Renders the `r` sweep.
pub fn r_sweep_table(rows: &[RSweepRow]) -> Table {
    let mut t = Table::new(vec![
        "r (rows/packet)",
        "B",
        "core LUTs (model)",
        "Precision@100",
        "Kendall tau",
        "NDCG",
        "rows dropped",
    ]);
    for r in rows {
        t.row(vec![
            r.r.to_string(),
            r.b.to_string(),
            r.core_luts.to_string(),
            fnum(r.quality.precision, 3),
            fnum(r.quality.kendall_tau, 3),
            fnum(r.quality.ndcg, 3),
            format!("{:.2}%", r.dropped_fraction * 100.0),
        ]);
    }
    t
}

/// One point of the layout design space (§IV-C equation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutRow {
    /// Value width `V`.
    pub value_bits: u32,
    /// Embedding size `M`.
    pub m: usize,
    /// Resulting packet capacity `B`.
    pub b: u32,
    /// Resulting operational intensity (nnz/byte).
    pub oi: f64,
    /// Bits wasted per packet.
    pub padding_bits: u32,
}

/// Tabulates `B(V, M)` across the §IV-C design space.
pub fn run_layout_sweep() -> Vec<LayoutRow> {
    let mut rows = Vec::new();
    for &v in &[16u32, 20, 25, 32] {
        for &m in &[512usize, 1024, 4096, 65536] {
            // invariant: the swept grid stays within the layout solver's field widths
            let layout = PacketLayout::solve(m, v).expect("layout fits");
            rows.push(LayoutRow {
                value_bits: v,
                m,
                b: layout.entries_per_packet(),
                oi: layout.operational_intensity(),
                padding_bits: 512 - layout.bits_used(),
            });
        }
    }
    rows
}

/// Renders the layout design space.
pub fn layout_table(rows: &[LayoutRow]) -> Table {
    let mut t = Table::new(vec![
        "V (bits)",
        "M",
        "B",
        "OI (nnz/byte)",
        "padding (bits)",
    ]);
    for r in rows {
        t.row(vec![
            r.value_bits.to_string(),
            r.m.to_string(),
            r.b.to_string(),
            fnum(r.oi, 3),
            r.padding_bits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_between_quarter_and_half_b_loses_nothing() {
        // §IV-B's claim, on our data: r = B/2 matches r = B accuracy.
        let rows = run_r_sweep(&ExpConfig::smoke_test());
        let full = rows.iter().find(|r| r.r == r.b).expect("r = B row");
        let half = rows.iter().find(|r| r.r == r.b / 2).expect("r = B/2 row");
        assert!(
            half.quality.precision >= full.quality.precision - 0.005,
            "half {:.4} vs full {:.4}",
            half.quality.precision,
            full.quality.precision
        );
        // And saves logic.
        assert!(half.core_luts < full.core_luts);
    }

    #[test]
    fn tiny_r_hurts_accuracy_or_drops_rows() {
        let rows = run_r_sweep(&ExpConfig::smoke_test());
        let r1 = rows.iter().find(|r| r.r == 1).expect("r = 1 row");
        // With r = 1, packets that complete 2+ rows overflow the tracker.
        // At ~20 nnz/row and B = 15 that is a minority of packets but a
        // measurable fraction of rows.
        assert!(r1.dropped_fraction > 0.02, "{}", r1.dropped_fraction);
        // The full-r configuration drops nothing.
        let full = rows.iter().find(|r| r.r == r.b).expect("r = B row");
        assert_eq!(full.dropped_fraction, 0.0);
    }

    #[test]
    fn layout_sweep_matches_capacity_equation() {
        let rows = run_layout_sweep();
        // Paper's design points appear in the frontier.
        let b = |v: u32, m: usize| {
            rows.iter()
                .find(|r| r.value_bits == v && r.m == m)
                .unwrap()
                .b
        };
        assert_eq!(b(20, 1024), 15);
        assert_eq!(b(25, 1024), 13);
        assert_eq!(b(32, 1024), 11);
        // Monotonic: more value bits or bigger M never increases B.
        assert!(b(16, 512) >= b(20, 512));
        assert!(b(20, 512) >= b(20, 65536));
    }

    #[test]
    fn tables_render() {
        assert!(!layout_table(&run_layout_sweep()).is_empty());
        let rows = run_r_sweep(&ExpConfig::smoke_test());
        assert_eq!(r_sweep_table(&rows).len(), rows.len());
    }
}
