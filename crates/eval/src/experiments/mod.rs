//! Experiment drivers, one per paper artifact.
//!
//! Every driver exposes a `run(...)` returning structured result rows
//! and a `to_table(...)` rendering them in the paper's layout. The
//! `tkspmv-bench` binaries are thin wrappers over these.

pub mod ablation;
pub mod accuracy;
pub mod datasets_table;
pub mod packing;
pub mod power;
pub mod precision_table;
pub mod resources_table;
pub mod roofline;
pub mod speedup;
