//! Table II: resource usage, clock and power of the four designs.

use tkspmv_fixed::Precision;
use tkspmv_hw::{DesignPoint, ResourceModel, U280_RESOURCES};

use crate::report::{fnum, Table};

/// One modelled Table II row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRow {
    /// The design's precision.
    pub precision: Precision,
    /// Cores placed.
    pub cores: u32,
    /// Utilisation fractions: LUT, FF, BRAM, URAM, DSP.
    pub utilization: [f64; 5],
    /// Modelled clock, MHz.
    pub clock_mhz: f64,
    /// Modelled power, W.
    pub power_w: f64,
}

/// Regenerates Table II from the calibrated resource model.
pub fn run() -> Vec<ResourceRow> {
    let model = ResourceModel::alveo_u280();
    Precision::FPGA_DESIGNS
        .iter()
        .map(|&p| {
            let d = DesignPoint::paper_design(p);
            ResourceRow {
                precision: p,
                cores: d.cores,
                utilization: model.utilization(&d),
                clock_mhz: model.clock_hz(&d) / 1e6,
                power_w: model.power_w(&d),
            }
        })
        .collect()
}

/// Renders rows in Table II's layout (percent utilisation).
pub fn to_table(rows: &[ResourceRow]) -> Table {
    let mut t = Table::new(vec![
        "Bit-width",
        "Cores",
        "LUT",
        "FF",
        "BRAM",
        "URAM",
        "DSP",
        "Clock (MHz)",
        "Power (W)",
    ]);
    for r in rows {
        t.row(vec![
            r.precision.label().to_string(),
            r.cores.to_string(),
            pct(r.utilization[0]),
            pct(r.utilization[1]),
            pct(r.utilization[2]),
            pct(r.utilization[3]),
            pct(r.utilization[4]),
            fnum(r.clock_mhz, 0),
            fnum(r.power_w, 0),
        ]);
    }
    t.row(vec![
        "Available".to_string(),
        String::new(),
        U280_RESOURCES.lut.to_string(),
        U280_RESOURCES.ff.to_string(),
        U280_RESOURCES.bram.to_string(),
        U280_RESOURCES.uram.to_string(),
        U280_RESOURCES.dsp.to_string(),
        String::new(),
        String::new(),
    ]);
    t
}

fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Table II's published rows: (label, [LUT, FF, BRAM, URAM, DSP] %,
/// clock MHz, power W).
pub fn paper_reference() -> [(&'static str, [f64; 5], f64, f64); 4] {
    [
        ("20b", [0.38, 0.35, 0.20, 0.33, 0.07], 253.0, 34.0),
        ("25b", [0.38, 0.36, 0.20, 0.30, 0.11], 240.0, 35.0),
        ("32b", [0.35, 0.33, 0.20, 0.27, 0.17], 249.0, 35.0),
        ("F32", [0.44, 0.37, 0.20, 0.26, 0.19], 204.0, 45.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_designs_at_32_cores() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.cores == 32));
    }

    #[test]
    fn tracks_paper_reference() {
        for (row, (label, util, clock, power)) in run().iter().zip(paper_reference()) {
            assert_eq!(row.precision.label(), label);
            for (got, want) in row.utilization.iter().zip(&util) {
                assert!((got - want).abs() < 0.09, "{label}: {got:.2} vs {want}");
            }
            assert!((row.clock_mhz - clock).abs() < 15.0, "{label} clock");
            assert!((row.power_w - power).abs() < 3.0, "{label} power");
        }
    }

    #[test]
    fn renders_with_available_row() {
        let t = to_table(&run());
        assert_eq!(t.len(), 5);
        let md = t.to_markdown();
        assert!(md.contains("Available"));
        assert!(md.contains("1097419"));
    }
}
