//! Figure 6: roofline analysis of the FPGA design vs CPU and GPU.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision};
use tkspmv_fixed::Precision;
use tkspmv_hw::{HbmConfig, Roofline, RooflinePoint};
use tkspmv_sparse::gen::query_vector;
use tkspmv_sparse::PacketLayout;

use crate::datasets::group_representatives;
use crate::report::{fnum, Table};
use crate::ExpConfig;

/// Figure 6a: attainable performance for each core count at each packet
/// capacity `B` (B = 5 is naive COO, B = 15 is BS-CSR at 20 bits).
pub fn bandwidth_series() -> Vec<(u32, Vec<(u32, f64)>)> {
    let hbm = HbmConfig::alveo_u280();
    [1u32, 8, 16, 32]
        .iter()
        .map(|&cores| {
            let series = (5u32..=15)
                .map(|b| {
                    let roof = Roofline::new(hbm.effective_bandwidth(cores), b as f64 / 64.0);
                    (b, roof.attainable_nnz_per_sec())
                })
                .collect();
            (cores, series)
        })
        .collect()
}

/// Figure 6b: architecture points (measured/modelled performance at
/// their operational intensity).
pub fn architecture_points(config: &ExpConfig) -> Vec<RooflinePoint> {
    let spec = group_representatives()[1]; // N = 10^7 panel
    let csr = spec.generate(config.scale_divisor);
    let nnz = csr.nnz() as u64;
    let rows = csr.num_rows() as u64;
    let x = query_vector(csr.num_cols(), config.seed);
    let hbm = HbmConfig::alveo_u280();
    let mut points = Vec::new();

    // CPU: measured nnz/s; CSR traffic = 8 bytes per nnz + row
    // pointers, OI ~ 1/8.5 nnz/byte; bandwidth roof from a typical
    // 2-socket server (~200 GB/s).
    let cpu_run = CpuTopK::with_all_cores().run_timed(&csr, x.as_slice(), 100);
    let cpu_oi = nnz as f64 / (nnz * 8 + rows * 8) as f64;
    let cpu_roof = Roofline::new(200.0e9, cpu_oi);
    points.push(RooflinePoint {
        label: "CPU Top-K SpMV".to_string(),
        operational_intensity: cpu_oi,
        performance_nnz_per_sec: nnz as f64 / cpu_run.seconds,
        attainable_nnz_per_sec: cpu_roof.attainable_nnz_per_sec(),
    });

    // GPU F32 / F16: modelled.
    let gpu = GpuModel::tesla_p100();
    for precision in [GpuPrecision::F32, GpuPrecision::F16] {
        let t = gpu.spmv_seconds(nnz, rows, precision);
        let oi = nnz as f64 / gpu.spmv_traffic_bytes(nnz, rows, precision) as f64;
        let roof = Roofline::new(gpu.peak_bandwidth, oi);
        points.push(RooflinePoint {
            label: format!("GPU SpMV, {}", precision.label()),
            operational_intensity: oi,
            performance_nnz_per_sec: nnz as f64 / t,
            attainable_nnz_per_sec: roof.attainable_nnz_per_sec(),
        });
    }

    // FPGA 32 cores at 32b and 20b: modelled kernel time on the real
    // packet stream.
    for precision in [Precision::Fixed32, Precision::Fixed20] {
        let acc = Accelerator::builder()
            .precision(precision)
            .cores(32)
            .k(8)
            .build()
            // invariant: the fixed paper configuration always builds
            .expect("paper design builds");
        // invariant: experiment driver; a failed load invalidates the run, so fail loudly
        let m = acc.load_matrix(&csr).expect("matrix loads");
        // invariant: experiment driver; a failed query invalidates the run, so fail loudly
        let out = acc.query(&m, &x, 100).expect("query runs");
        let layout =
            // invariant: the paper grid stays within the layout solver's field widths
            PacketLayout::solve(csr.num_cols(), precision.value_bits()).expect("layout fits");
        let roof = Roofline::new(hbm.effective_bandwidth(32), layout.operational_intensity());
        points.push(RooflinePoint {
            label: format!("FPGA, 32C {}", precision.label()),
            operational_intensity: out.perf.operational_intensity(),
            performance_nnz_per_sec: nnz as f64 / out.perf.kernel_seconds,
            attainable_nnz_per_sec: roof.attainable_nnz_per_sec(),
        });
    }
    points
}

/// Renders Figure 6a as a table (rows = B, columns = core counts).
pub fn series_table(series: &[(u32, Vec<(u32, f64)>)]) -> Table {
    let mut header = vec!["B (nnz/packet)".to_string()];
    header.extend(series.iter().map(|(c, _)| format!("{c} cores (GNNZ/s)")));
    let mut t = Table::new(header);
    let bs: Vec<u32> = series[0].1.iter().map(|&(b, _)| b).collect();
    for (i, b) in bs.iter().enumerate() {
        let mut row = vec![b.to_string()];
        for (_, points) in series {
            row.push(fnum(points[i].1 / 1e9, 1));
        }
        t.row(row);
    }
    t
}

/// Renders Figure 6b's points as a table.
pub fn points_table(points: &[RooflinePoint]) -> Table {
    let mut t = Table::new(vec![
        "Architecture",
        "OI (nnz/byte)",
        "Performance (GNNZ/s)",
        "Roofline bound (GNNZ/s)",
        "Efficiency",
    ]);
    for p in points {
        t.row(vec![
            p.label.clone(),
            fnum(p.operational_intensity, 3),
            fnum(p.performance_nnz_per_sec / 1e9, 2),
            fnum(p.attainable_nnz_per_sec / 1e9, 2),
            format!("{:.0}%", p.efficiency() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6a_linear_scaling() {
        let series = bandwidth_series();
        assert_eq!(series.len(), 4);
        // At any B, 32 cores = 32x the 1-core bound.
        let one_core = &series[0].1;
        let all_cores = &series[3].1;
        for (a, b) in one_core.iter().zip(all_cores) {
            assert!((b.1 / a.1 - 32.0).abs() < 1e-9);
        }
        // B = 15 vs B = 5 is the 3x BS-CSR gain.
        let b5 = all_cores.iter().find(|&&(b, _)| b == 5).unwrap().1;
        let b15 = all_cores.iter().find(|&&(b, _)| b == 15).unwrap().1;
        assert!((b15 / b5 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn figure6b_fpga_has_best_intensity_and_performance() {
        let points = architecture_points(&ExpConfig::smoke_test());
        let fpga20 = points
            .iter()
            .find(|p| p.label.contains("20b"))
            .expect("FPGA 20b point");
        for p in &points {
            if !p.label.contains("FPGA") {
                assert!(
                    fpga20.operational_intensity > p.operational_intensity,
                    "FPGA OI {:.3} must beat {} ({:.3})",
                    fpga20.operational_intensity,
                    p.label,
                    p.operational_intensity
                );
                assert!(
                    fpga20.performance_nnz_per_sec > p.performance_nnz_per_sec,
                    "FPGA perf must beat {}",
                    p.label
                );
            }
        }
    }

    #[test]
    fn fpga_runs_near_its_roofline() {
        let points = architecture_points(&ExpConfig::smoke_test());
        for p in points.iter().filter(|p| p.label.contains("FPGA")) {
            assert!(p.efficiency() > 0.5, "{}: {:.2}", p.label, p.efficiency());
            assert!(p.efficiency() <= 1.0 + 1e-9, "{}", p.label);
        }
    }

    #[test]
    fn tables_render() {
        let s = bandwidth_series();
        assert_eq!(series_table(&s).len(), 11); // B = 5..=15
        let pts = architecture_points(&ExpConfig::smoke_test());
        assert_eq!(points_table(&pts).len(), pts.len());
    }
}
