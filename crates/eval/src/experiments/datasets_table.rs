//! Table III: the evaluation matrices and their BS-CSR footprints.

use tkspmv_fixed::Q1_19;
use tkspmv_sparse::{BsCsr, PacketLayout};

use crate::datasets::{table3_specs, DatasetSpec};
use crate::report::{fgb, Table};
use crate::ExpConfig;

/// Measured properties of one generated evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// The spec that produced it.
    pub spec: DatasetSpec,
    /// Rows actually generated (scaled).
    pub rows: usize,
    /// Non-zeros actually generated (scaled).
    pub nnz: u64,
    /// BS-CSR bytes at the generated scale (V = 20).
    pub bscsr_bytes: u64,
    /// Extrapolated full-scale non-zeros.
    pub full_nnz: u64,
    /// Extrapolated full-scale BS-CSR bytes.
    pub full_bytes: u64,
}

/// Generates all 19 matrices at the configured scale and measures their
/// BS-CSR footprint.
pub fn run(config: &ExpConfig) -> Vec<DatasetRow> {
    table3_specs()
        .iter()
        .map(|spec| {
            let csr = spec.generate(config.scale_divisor);
            // invariant: the paper grid (m <= 65536, 20-bit values) always admits a layout
            let layout = PacketLayout::solve(csr.num_cols(), 20).expect("layout fits");
            let bs = BsCsr::encode::<Q1_19>(&csr, layout);
            let factor = (spec.full_rows / csr.num_rows().max(1)) as u64;
            DatasetRow {
                spec: *spec,
                rows: csr.num_rows(),
                nnz: csr.nnz() as u64,
                bscsr_bytes: bs.size_bytes(),
                full_nnz: csr.nnz() as u64 * factor,
                full_bytes: bs.size_bytes() * factor,
            }
        })
        .collect()
}

/// Renders rows in Table III's layout (full-scale extrapolations).
pub fn to_table(rows: &[DatasetRow]) -> Table {
    let mut t = Table::new(vec![
        "Matrix",
        "Distribution",
        "Rows (full)",
        "M",
        "Non-zeros (full)",
        "BS-CSR size (full)",
    ]);
    for r in rows {
        t.row(vec![
            r.spec.name.to_string(),
            r.spec.kind.label().to_string(),
            format!("{:.1e}", r.spec.full_rows as f64),
            r.spec.num_cols.to_string(),
            format!("{:.2e}", r.full_nnz as f64),
            fgb(r.full_bytes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn all_19_matrices_measured() {
        let rows = run(&ExpConfig::smoke_test());
        assert_eq!(rows.len(), 19);
        assert!(rows.iter().all(|r| r.nnz > 0 && r.bscsr_bytes > 0));
    }

    #[test]
    fn full_scale_sizes_match_table3_ranges() {
        // Table III: uniform N = 10^7 matrices occupy 0.8 - 1.7 GB in
        // BS-CSR. Extrapolation from 1/1000-scale must land in range.
        let rows = run(&ExpConfig::smoke_test());
        for r in rows
            .iter()
            .filter(|r| r.spec.full_rows == 10_000_000 && r.spec.kind == DatasetKind::Uniform)
        {
            let gb = r.full_bytes as f64 / 1e9;
            assert!(
                (0.6..2.2).contains(&gb),
                "{}: {gb:.2} GB out of Table III range",
                r.spec.name
            );
        }
    }

    #[test]
    fn bscsr_is_at_least_2x_smaller_than_naive_coo() {
        // Table III caption: "if stored as a naive COO, they would take 3
        // times as much space". With placeholder/padding overheads our
        // ratio is at least 2.5x for the uniform matrices.
        let rows = run(&ExpConfig::smoke_test());
        for r in rows.iter().filter(|r| r.spec.kind == DatasetKind::Uniform) {
            let naive = r.nnz * 12;
            let ratio = naive as f64 / r.bscsr_bytes as f64;
            assert!(ratio > 2.5, "{}: ratio {ratio:.2}", r.spec.name);
        }
    }

    #[test]
    fn table_has_one_row_per_matrix() {
        let rows = run(&ExpConfig::smoke_test());
        assert_eq!(to_table(&rows).len(), 19);
    }
}
