//! §V-B: power efficiency — performance per watt of CPU, GPU and the
//! FPGA designs.
//!
//! The paper measures 35 W for the FPGA board (+40 W host), ~300 W for
//! the dual-Xeon CPU, 250 W (+40 W host) for the GPU, and reports a
//! 400× performance/W advantage over the CPU and 14.2× over the
//! idealised GPU (7.7× when both sides carry an equal host). We use the
//! paper's device power figures (a wall-meter cannot be reproduced in
//! software) combined with the measured/modelled throughputs of the
//! Figure 5 experiment.

use tkspmv_fixed::Precision;
use tkspmv_hw::{DesignPoint, ResourceModel};

use crate::experiments::speedup::{self, SpeedupRow};
use crate::report::{fnum, Table};
use crate::{EvalError, ExpConfig};

/// Device power assumptions, in watts (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAssumptions {
    /// CPU package power under load.
    pub cpu_w: f64,
    /// GPU board power under load.
    pub gpu_w: f64,
    /// Host server overhead (added to FPGA and GPU when comparing
    /// system-level efficiency).
    pub host_w: f64,
}

impl Default for PowerAssumptions {
    fn default() -> Self {
        Self {
            cpu_w: 300.0,
            gpu_w: 250.0,
            host_w: 40.0,
        }
    }
}

/// Performance/W of one architecture on one dataset group.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// Architecture label.
    pub arch: String,
    /// Throughput in GNNZ/s.
    pub gnnz_per_sec: f64,
    /// Device power, W.
    pub device_w: f64,
    /// Device-level performance per watt, MNNZ/s/W.
    pub mnnz_per_watt: f64,
    /// Ratio vs the idealised GPU (device-level).
    pub vs_gpu: f64,
}

/// Derives the §V-B comparison from a Figure 5 speedup row.
///
/// # Errors
///
/// [`EvalError::MissingBackend`] if the row's roster lacks a backend
/// this table derives from (the GPU F32 variants and every FPGA
/// design).
pub fn run_from_speedup(
    row: &SpeedupRow,
    assumptions: PowerAssumptions,
) -> Result<Vec<PowerRow>, EvalError> {
    let model = ResourceModel::alveo_u280();
    let nnz = row.nnz as f64;
    // Throughputs implied by the shared CPU baseline time.
    let thr = |speedup: f64| nnz / (row.cpu_seconds / speedup) / 1e9;
    let mut rows = vec![
        (
            "CPU (2x Xeon 6248)".to_string(),
            thr(1.0),
            assumptions.cpu_w,
        ),
        (
            "GPU F32, zero-cost sort".to_string(),
            thr(row.speedup_of("gpu-f32-spmv")?),
            assumptions.gpu_w,
        ),
        (
            "GPU F32, with sort".to_string(),
            thr(row.speedup_of("gpu-f32")?),
            assumptions.gpu_w,
        ),
    ];
    for precision in Precision::FPGA_DESIGNS {
        let d = DesignPoint::paper_design(precision);
        let backend = format!("fpga-{}", precision.label().to_ascii_lowercase());
        rows.push((
            format!("FPGA {}", precision.label()),
            thr(row.speedup_of(&backend)?),
            model.power_w(&d),
        ));
    }
    let gpu_ppw = rows[1].1 * 1e3 / rows[1].2; // MNNZ/s per W
    Ok(rows
        .into_iter()
        .map(|(arch, gnnz, device_w)| {
            let ppw = gnnz * 1e3 / device_w;
            PowerRow {
                arch,
                gnnz_per_sec: gnnz,
                device_w,
                mnnz_per_watt: ppw,
                vs_gpu: ppw / gpu_ppw,
            }
        })
        .collect())
}

/// Runs the full §V-B experiment on the `N = 10^7` panel.
///
/// # Errors
///
/// As [`run_from_speedup`], plus [`EvalError::Engine`] if the
/// underlying Figure 5 experiment fails.
pub fn run(config: &ExpConfig) -> Result<Vec<PowerRow>, EvalError> {
    let speedups = speedup::run(config)?;
    run_from_speedup(&speedups[1], PowerAssumptions::default())
}

/// Renders the power-efficiency table.
pub fn to_table(rows: &[PowerRow]) -> Table {
    let mut t = Table::new(vec![
        "Architecture",
        "Throughput (GNNZ/s)",
        "Device power (W)",
        "MNNZ/s per W",
        "vs idealised GPU",
    ]);
    for r in rows {
        t.row(vec![
            r.arch.clone(),
            fnum(r.gnnz_per_sec, 2),
            fnum(r.device_w, 0),
            fnum(r.mnnz_per_watt, 1),
            format!("{:.1}x", r.vs_gpu),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetGroup;

    fn synthetic_row() -> SpeedupRow {
        // A hand-built row with the paper's N = 10^7 panel speedups so
        // the power math is tested independently of host CPU speed.
        let cpu_seconds = 0.509;
        let arch = [
            ("gpu-f32-spmv", 51.0),
            ("gpu-f32", 15.0),
            ("gpu-f16-spmv", 58.0),
            ("gpu-f16", 16.0),
            ("fpga-20b", 106.0),
            ("fpga-25b", 88.0),
            ("fpga-32b", 89.0),
            ("fpga-f32", 43.0),
        ]
        .into_iter()
        .map(
            |(backend, speedup)| crate::experiments::speedup::ArchSpeedup {
                backend: backend.to_string(),
                seconds: cpu_seconds / speedup,
                speedup,
            },
        )
        .collect();
        SpeedupRow {
            group: DatasetGroup::Synthetic1e7,
            rows: 10_000_000,
            nnz: 300_000_000,
            cpu_seconds,
            arch,
        }
    }

    #[test]
    fn fpga_beats_gpu_by_order_of_magnitude_per_watt() -> Result<(), crate::EvalError> {
        // Paper: 14.2x higher performance/W than the idealised GPU.
        let rows = run_from_speedup(&synthetic_row(), PowerAssumptions::default())?;
        let fpga20 = rows.iter().find(|r| r.arch == "FPGA 20b").unwrap();
        assert!(
            (10.0..20.0).contains(&fpga20.vs_gpu),
            "FPGA/GPU perf/W = {:.1} (paper: 14.2x)",
            fpga20.vs_gpu
        );
        Ok(())
    }

    #[test]
    fn fpga_beats_cpu_by_hundreds_per_watt() -> Result<(), crate::EvalError> {
        // Paper: 400x higher performance/W than the CPU.
        let rows = run_from_speedup(&synthetic_row(), PowerAssumptions::default())?;
        let cpu = rows.iter().find(|r| r.arch.starts_with("CPU")).unwrap();
        let fpga20 = rows.iter().find(|r| r.arch == "FPGA 20b").unwrap();
        let ratio = fpga20.mnnz_per_watt / cpu.mnnz_per_watt;
        assert!(
            (300.0..1200.0).contains(&ratio),
            "FPGA/CPU perf/W = {ratio:.0}"
        );
        Ok(())
    }

    #[test]
    fn fixed_point_designs_are_most_efficient() -> Result<(), crate::EvalError> {
        let rows = run_from_speedup(&synthetic_row(), PowerAssumptions::default())?;
        let get = |name: &str| rows.iter().find(|r| r.arch == name).unwrap().mnnz_per_watt;
        assert!(get("FPGA 20b") > get("FPGA F32"));
        assert!(get("FPGA 20b") > get("GPU F32, zero-cost sort"));
        Ok(())
    }

    #[test]
    fn incomplete_roster_is_a_typed_error_not_a_panic() {
        let mut row = synthetic_row();
        row.arch.retain(|a| a.backend != "fpga-25b");
        let err = run_from_speedup(&row, PowerAssumptions::default()).unwrap_err();
        assert!(
            matches!(&err, crate::EvalError::MissingBackend { backend, .. } if backend == "fpga-25b"),
            "{err:?}"
        );
    }

    #[test]
    fn end_to_end_run_produces_all_rows() -> Result<(), crate::EvalError> {
        let rows = run(&ExpConfig::smoke_test())?;
        assert_eq!(rows.len(), 7);
        assert!(!to_table(&rows).is_empty());
        // Device powers come from the model, in Table II's range.
        for r in rows.iter().filter(|r| r.arch.starts_with("FPGA")) {
            assert!(
                (30.0..50.0).contains(&r.device_w),
                "{}: {}",
                r.arch,
                r.device_w
            );
        }
        Ok(())
    }
}
