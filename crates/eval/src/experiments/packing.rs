//! Figure 3: packing density of naive COO vs optimised COO vs BS-CSR.

use tkspmv_sparse::{CooPacketKind, PacketLayout};

use crate::report::{fnum, Table};

/// Packing characteristics of one format in a 512-bit packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingRow {
    /// Format name.
    pub format: &'static str,
    /// Non-zeros per packet.
    pub entries_per_packet: u32,
    /// Bits used of the 512.
    pub bits_used: u32,
    /// Operational intensity, nnz/byte.
    pub operational_intensity: f64,
    /// Gain over naive COO.
    pub gain_vs_naive: f64,
}

/// Reproduces Figure 3's comparison for `M < 1024`, 20-bit values.
pub fn run() -> Vec<PackingRow> {
    let naive = CooPacketKind::Naive;
    let optimized = CooPacketKind::Optimized {
        idx_bits: 10,
        value_bits: 20,
    };
    // invariant: the paper layout (m = 1024, 20-bit values) always solves
    let bscsr = PacketLayout::solve(1024, 20).expect("paper layout fits");
    let base = naive.entries_per_packet() as f64;
    vec![
        PackingRow {
            format: "Naive COO",
            entries_per_packet: naive.entries_per_packet(),
            bits_used: naive.entries_per_packet() * naive.entry_bits(),
            operational_intensity: naive.operational_intensity(),
            gain_vs_naive: 1.0,
        },
        PackingRow {
            format: "Optimized COO",
            entries_per_packet: optimized.entries_per_packet(),
            bits_used: optimized.entries_per_packet() * optimized.entry_bits(),
            operational_intensity: optimized.operational_intensity(),
            gain_vs_naive: optimized.entries_per_packet() as f64 / base,
        },
        PackingRow {
            format: "BS-CSR",
            entries_per_packet: bscsr.entries_per_packet(),
            bits_used: bscsr.bits_used(),
            operational_intensity: bscsr.operational_intensity(),
            gain_vs_naive: bscsr.entries_per_packet() as f64 / base,
        },
    ]
}

/// Renders the Figure 3 comparison.
pub fn to_table(rows: &[PackingRow]) -> Table {
    let mut t = Table::new(vec![
        "Format",
        "Non-zeros / 512b packet",
        "Bits used",
        "OI (nnz/byte)",
        "Gain vs naive COO",
    ]);
    for r in rows {
        t.row(vec![
            r.format.to_string(),
            r.entries_per_packet.to_string(),
            r.bits_used.to_string(),
            fnum(r.operational_intensity, 3),
            format!("{:.1}x", r.gain_vs_naive),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_numbers() {
        let rows = run();
        // 5 / 8 / 15 entries; 480 / 496 / 511 bits.
        assert_eq!(rows[0].entries_per_packet, 5);
        assert_eq!(rows[0].bits_used, 480);
        assert_eq!(rows[1].entries_per_packet, 8);
        assert_eq!(rows[1].bits_used, 496);
        assert_eq!(rows[2].entries_per_packet, 15);
        assert_eq!(rows[2].bits_used, 511);
    }

    #[test]
    fn bscsr_gains_3x() {
        let rows = run();
        assert!((rows[2].gain_vs_naive - 3.0).abs() < 1e-12);
        assert!(rows[1].gain_vs_naive < rows[2].gain_vs_naive);
    }

    #[test]
    fn renders() {
        let t = to_table(&run());
        assert_eq!(t.len(), 3);
        assert!(t.to_markdown().contains("BS-CSR"));
    }
}
