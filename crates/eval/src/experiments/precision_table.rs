//! Table I: expected precision of the partitioned Top-K approximation.
//!
//! Unlike the engine-facing experiments, this one enumerates no
//! [`tkspmv::TopKBackend`]s: Table I is pure order statistics over the
//! `(N, c, k, K)` design space — the *analytic* counterpart of the
//! accuracies the backends realise empirically in Figure 7 — so it runs
//! on closed forms and Monte Carlo trials alone.

use tkspmv::approx::{expected_precision, monte_carlo_precision};

use crate::report::{fnum, Table};

/// The K values of Table I's columns.
pub const TABLE1_KS: [u64; 6] = [8, 16, 32, 50, 75, 100];
/// The partition counts of Table I's rows.
pub const TABLE1_CS: [u64; 3] = [16, 28, 32];
/// The matrix sizes of Table I's row groups.
pub const TABLE1_NS: [u64; 2] = [1_000_000, 10_000_000];

/// One Table I row: precision per K for a given `(N, c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRow {
    /// Matrix rows `N`.
    pub n: u64,
    /// Partitions `c`.
    pub c: u64,
    /// Monte Carlo estimates per K (the paper's methodology).
    pub monte_carlo: Vec<f64>,
    /// Closed-form expectations per K (Equation 1's exact counterpart).
    pub closed_form: Vec<f64>,
}

/// Reproduces Table I: `k = 8`, 1000 trials per cell (plus the closed
/// form for cross-checking).
pub fn run(trials: u32, seed: u64) -> Vec<PrecisionRow> {
    let mut rows = Vec::new();
    for &n in &TABLE1_NS {
        for &c in &TABLE1_CS {
            let monte_carlo = TABLE1_KS
                .iter()
                .map(|&k| monte_carlo_precision(n, c, 8, k, trials, seed ^ (n + c)))
                .collect();
            let closed_form = TABLE1_KS
                .iter()
                .map(|&k| expected_precision(n, c, 8, k))
                .collect();
            rows.push(PrecisionRow {
                n,
                c,
                monte_carlo,
                closed_form,
            });
        }
    }
    rows
}

/// Renders the rows in Table I's layout.
pub fn to_table(rows: &[PrecisionRow]) -> Table {
    let mut header = vec![
        "N".to_string(),
        "partitions".to_string(),
        "method".to_string(),
    ];
    header.extend(TABLE1_KS.iter().map(|k| format!("K={k}")));
    let mut t = Table::new(header);
    for row in rows {
        let mut mc = vec![
            format!("{:.0e}", row.n as f64),
            format!("c = {}", row.c),
            "monte-carlo".to_string(),
        ];
        mc.extend(row.monte_carlo.iter().map(|&p| fnum(p, 3)));
        t.row(mc);
        let mut cf = vec![String::new(), String::new(), "closed-form".to_string()];
        cf.extend(row.closed_form.iter().map(|&p| fnum(p, 3)));
        t.row(cf);
    }
    t
}

/// Table I's published values for `N = 10^6` (for regression checks).
pub fn paper_reference_n1e6() -> [(u64, [f64; 6]); 3] {
    [
        (16, [1.0, 1.0, 0.999, 0.998, 0.983, 0.942]),
        (28, [1.0, 1.0, 1.0, 0.999, 0.999, 0.996]),
        (32, [1.0, 1.0, 1.0, 0.999, 0.999, 0.997]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_within_tolerance() {
        let rows = run(2000, 42);
        for (c, expected) in paper_reference_n1e6() {
            let row = rows
                .iter()
                .find(|r| r.n == 1_000_000 && r.c == c)
                .expect("row exists");
            for (i, &want) in expected.iter().enumerate() {
                let got = row.monte_carlo[i];
                assert!(
                    (got - want).abs() < 0.015,
                    "N=1e6 c={c} K={}: {got:.3} vs paper {want}",
                    TABLE1_KS[i]
                );
            }
        }
    }

    #[test]
    fn monte_carlo_tracks_closed_form() {
        for row in run(3000, 1) {
            for (mc, cf) in row.monte_carlo.iter().zip(&row.closed_form) {
                assert!((mc - cf).abs() < 0.02, "{mc} vs {cf}");
            }
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run(100, 2);
        let t = to_table(&rows);
        assert_eq!(t.len(), rows.len() * 2);
        assert!(t.to_markdown().contains("monte-carlo"));
    }
}
