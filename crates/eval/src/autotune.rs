//! Adaptive precision selection — the paper's stated future work
//! (§VI: "reconfiguring the FPGA in terms of numerical precision to
//! guarantee desired targets of accuracy or performance").
//!
//! Given an embedding collection and an accuracy target, the tuner
//! scores each candidate design on a row sample against the exact
//! oracle and picks the *fastest* design (highest packet capacity `B`,
//! then highest clock) that still meets the target. This is exactly the
//! decision procedure a reconfigurable deployment would run before
//! choosing which bitstream to flash.

use tkspmv::{Accelerator, EngineError};
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::{query_vector, Rng64};
use tkspmv_sparse::Csr;

use crate::metrics::RankingQuality;

/// What the tuner must guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyTarget {
    /// Required mean Precision@K.
    pub min_precision: f64,
    /// Required mean NDCG@K.
    pub min_ndcg: f64,
    /// The K the guarantee applies to.
    pub k: usize,
}

impl AccuracyTarget {
    /// A typical production target: 98% precision, 0.98 NDCG at K = 100.
    pub fn strict() -> Self {
        Self {
            min_precision: 0.98,
            min_ndcg: 0.98,
            k: 100,
        }
    }
}

/// Result of tuning: the chosen design and the evidence for every
/// candidate.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The selected precision (fastest candidate meeting the target).
    pub selected: Precision,
    /// Per-candidate `(precision, quality, modelled_gnnz_per_sec)`.
    pub candidates: Vec<(Precision, RankingQuality, f64)>,
}

/// Scores every FPGA design on a sampled sub-collection and returns the
/// fastest one that meets `target`.
///
/// `sample_rows` bounds the evaluation cost (rows are sampled
/// deterministically from `seed`); `queries` queries are averaged.
///
/// # Errors
///
/// Returns [`EngineError::BadQuery`] if *no* design meets the target
/// (the caller should relax the target or raise `k`/partitions), or any
/// underlying accelerator error.
///
/// # Panics
///
/// Panics if `sample_rows`, `queries` or `target.k` is zero.
pub fn choose_precision(
    csr: &Csr,
    target: AccuracyTarget,
    sample_rows: usize,
    queries: usize,
    seed: u64,
) -> Result<TuneOutcome, EngineError> {
    assert!(sample_rows > 0 && queries > 0 && target.k > 0);
    let sample = sample_matrix(csr, sample_rows, seed);

    let mut candidates = Vec::new();
    let mut best: Option<(Precision, f64)> = None;
    for precision in Precision::FPGA_DESIGNS {
        let acc = Accelerator::builder()
            .precision(precision)
            .cores(32)
            .k(8)
            .build()?;
        let loaded = acc.load_matrix(&sample)?;
        let mut samples = Vec::with_capacity(queries);
        let mut gnnz = 0.0;
        for q in 0..queries {
            let x = query_vector(sample.num_cols(), seed ^ (q as u64 + 1));
            let truth = exact_topk(&sample, x.as_slice(), target.k.min(sample.num_rows()));
            let out = acc.query(&loaded, &x, target.k.min(sample.num_rows()))?;
            samples.push(RankingQuality::score(&out.topk.indices(), truth.entries()));
            gnnz += out.perf.gnnz_per_sec() / queries as f64;
        }
        let quality = RankingQuality::mean(&samples);
        let meets = quality.precision >= target.min_precision && quality.ndcg >= target.min_ndcg;
        // Rank candidates by modelled throughput, which already folds
        // in the packet capacity B and the per-design clock.
        if meets && best.is_none_or(|(_, g)| gnnz > g) {
            best = Some((precision, gnnz));
        }
        candidates.push((precision, quality, gnnz));
    }
    match best {
        Some((selected, _)) => Ok(TuneOutcome {
            selected,
            candidates,
        }),
        None => Err(EngineError::bad_query(format!(
            "no design meets precision >= {} and NDCG >= {} at K = {}",
            target.min_precision, target.min_ndcg, target.k
        ))),
    }
}

/// Deterministically samples `rows` rows of `csr` (without replacement)
/// into a smaller collection with the same column space.
fn sample_matrix(csr: &Csr, rows: usize, seed: u64) -> Csr {
    if rows >= csr.num_rows() {
        return csr.clone();
    }
    let mut rng = Rng64::new(seed);
    let picked = rng.sample_distinct(rows, csr.num_rows());
    let triplets: Vec<(u32, u32, f32)> = picked
        .iter()
        .enumerate()
        .flat_map(|(new_r, &old_r)| {
            csr.row(old_r as usize)
                .map(move |(c, v)| (new_r as u32, c, v))
        })
        .collect();
    // invariant: triplets are re-rowed entries of a valid Csr with the same column count
    Csr::from_triplets(rows, csr.num_cols(), &triplets).expect("sampled rows stay valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkspmv_sparse::gen::{NnzDistribution, SyntheticConfig};

    fn collection() -> Csr {
        SyntheticConfig {
            num_rows: 4000,
            num_cols: 512,
            avg_nnz_per_row: 20,
            distribution: NnzDistribution::Uniform,
            seed: 77,
        }
        .generate()
    }

    #[test]
    fn picks_a_fast_design_meeting_strict_target() {
        let outcome =
            choose_precision(&collection(), AccuracyTarget::strict(), 2000, 3, 42).unwrap();
        assert_eq!(outcome.candidates.len(), 4);
        // All four designs are accurate on this data; the fastest is the
        // 20-bit one (highest B).
        assert_eq!(outcome.selected, Precision::Fixed20);
    }

    #[test]
    fn impossible_target_is_an_error() {
        let err = choose_precision(
            &collection(),
            AccuracyTarget {
                min_precision: 1.1, // unattainable by construction
                min_ndcg: 0.0,
                k: 50,
            },
            1000,
            2,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BadQuery { .. }));
    }

    #[test]
    fn candidates_report_quality_for_every_design() {
        let outcome =
            choose_precision(&collection(), AccuracyTarget::strict(), 1500, 2, 9).unwrap();
        for (p, q, gnnz) in &outcome.candidates {
            assert!(q.precision > 0.9, "{p:?}: {}", q.precision);
            assert!(*gnnz > 0.0);
        }
    }

    #[test]
    fn sample_matrix_preserves_shape_properties() {
        let csr = collection();
        let s = sample_matrix(&csr, 500, 3);
        assert_eq!(s.num_rows(), 500);
        assert_eq!(s.num_cols(), csr.num_cols());
        assert!(s.row_stats().mean_nnz > 10.0);
        // Sampling more rows than available returns the original.
        assert_eq!(sample_matrix(&csr, 10_000, 3), csr);
    }
}
