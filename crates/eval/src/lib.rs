//! Evaluation harness: metrics, datasets and experiment drivers that
//! regenerate every table and figure of the paper.
//!
//! | Artifact | Driver | Binary (`tkspmv-bench`) |
//! |----------|--------|--------------------------|
//! | Table I (partition precision) | [`experiments::precision_table`] | `table1` |
//! | Table II (resources/clock/power) | [`experiments::resources_table`] | `table2` |
//! | Table III (evaluation matrices) | [`experiments::datasets_table`] | `table3` |
//! | Figure 3 (packing density) | [`experiments::packing`] | `fig3_packing` |
//! | Figure 5 (speedup vs CPU) | [`experiments::speedup`] | `fig5_speedup` |
//! | Figure 6 (roofline) | [`experiments::roofline`] | `fig6_roofline` |
//! | Figure 7 (accuracy metrics) | [`experiments::accuracy`] | `fig7_accuracy` |
//! | `r` ablation (§IV-B) | [`experiments::ablation`] | `ablation_r` |
//! | Layout design space (§IV-C) | [`experiments::ablation`] | `ablation_layout` |
//!
//! Experiments accept an [`ExpConfig`] whose `scale_divisor` shrinks the
//! Table III matrix sizes (default 100×) so the suite runs on a laptop;
//! the performance models are scale-invariant (streaming designs are
//! linear in NNZ), so speedup and accuracy *shapes* are preserved. Run
//! with `scale_divisor = 1` to reproduce at full size.
//!
//! Engine-facing experiments do not hand-wire per-architecture code
//! paths: they enumerate `Box<dyn TopKBackend>` rosters from
//! [`backends`], so a new engine joins every figure by implementing one
//! trait.

pub mod autotune;
pub mod backends;
pub mod datasets;
mod error;
pub mod experiments;
pub mod metrics;
pub mod report;

pub use error::EvalError;

/// Global experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Divide Table III row counts by this factor (1 = paper scale).
    pub scale_divisor: usize,
    /// Queries averaged per measurement (the paper uses 30).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale_divisor: 100,
            queries: 5,
            seed: 0xDAC_2021,
        }
    }
}

impl ExpConfig {
    /// A tiny configuration for unit tests (1000× smaller, 2 queries).
    pub fn smoke_test() -> Self {
        Self {
            scale_divisor: 1000,
            queries: 2,
            seed: 7,
        }
    }
}
