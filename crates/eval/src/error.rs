//! Typed errors of the experiment harness.
//!
//! Experiments race rosters of backends; the two ways that can go wrong
//! — a backend missing from the roster a derived table needs, or an
//! engine failing underneath an experiment — used to be `panic!`s and
//! are now [`EvalError`] values every driver propagates.

use core::fmt;

use tkspmv::EngineError;

/// Why an experiment driver could not produce its table.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// A derived quantity needs a backend that is not in the roster the
    /// experiment ran (e.g. the power table asking a speedup row for
    /// `fpga-20b`).
    MissingBackend {
        /// The backend the caller asked for.
        backend: String,
        /// The backends actually present, in roster order.
        roster: Vec<String>,
    },
    /// An engine failed while the experiment drove it.
    Engine(EngineError),
}

impl EvalError {
    /// A [`EvalError::MissingBackend`] naming what was asked for and
    /// what the roster holds.
    pub fn missing_backend(backend: impl Into<String>, roster: Vec<String>) -> Self {
        EvalError::MissingBackend {
            backend: backend.into(),
            roster,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingBackend { backend, roster } => write!(
                f,
                "backend `{backend}` missing from the roster [{}]",
                roster.join(", ")
            ),
            EvalError::Engine(e) => write!(f, "engine failed during the experiment: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Engine(e) => Some(e),
            EvalError::MissingBackend { .. } => None,
        }
    }
}

impl From<EngineError> for EvalError {
    fn from(e: EngineError) -> Self {
        EvalError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_backend_and_roster() {
        let e = EvalError::missing_backend("fpga-20b", vec!["cpu".into(), "gpu-f32".into()]);
        let msg = e.to_string();
        assert!(
            msg.contains("fpga-20b") && msg.contains("cpu, gpu-f32"),
            "{msg}"
        );
    }

    #[test]
    fn engine_errors_convert_and_chain() {
        use std::error::Error;
        let e = EvalError::from(EngineError::empty_matrix());
        assert!(matches!(e, EvalError::Engine(_)));
        assert!(e.source().is_some());
        assert!(EvalError::missing_backend("x", vec![]).source().is_none());
    }
}
