//! Guards against manifest drift: the crate dependency DAG must stay
//! acyclic, and every shared dependency must be declared once in the
//! root `[workspace.dependencies]` table and referenced with
//! `workspace = true` by members, so versions cannot fork.
//!
//! Cargo would reject a dependency *cycle* on its own, but only when
//! someone builds; these tests also pin the intended layering (e.g.
//! `tkspmv_sparse` must never grow a dependency on `tkspmv`) which
//! cargo cannot know about.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Crates whose versions are managed centrally; members must reference
/// them via `workspace = true`.
const WORKSPACE_MANAGED: &[&str] = &[
    "tkspmv",
    "tkspmv_fixed",
    "tkspmv_sparse",
    "tkspmv_hw",
    "tkspmv_obs",
    "tkspmv_baselines",
    "tkspmv_serve",
    "tkspmv_fabric",
    "tkspmv_eval",
    "tkspmv_bench",
    "proptest",
    "criterion",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Minimal TOML scan: returns `(package_name, deps)` where `deps` maps
/// a dependency name to whether it is declared with `workspace = true`.
/// Covers only the manifest shapes this workspace uses (no inline
/// tables spanning lines, no `target.*` dependency sections).
fn scan_manifest(path: &Path) -> (String, BTreeMap<String, bool>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let mut package_name = String::new();
    let mut section = String::new();
    let mut deps = BTreeMap::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if section == "package" && key == "name" {
            package_name = value.trim_matches('"').to_string();
        }
        if matches!(section.as_str(), "dependencies" | "dev-dependencies") {
            // `name = { workspace = true }` or `name.workspace = true`.
            let name = key.split('.').next().unwrap().to_string();
            let via_workspace =
                key.ends_with(".workspace") || value.replace(' ', "").contains("workspace=true");
            deps.insert(name, via_workspace);
        }
    }
    assert!(!package_name.is_empty(), "no [package] name in {path:?}");
    (package_name, deps)
}

fn member_manifests() -> Vec<PathBuf> {
    let root = repo_root();
    let mut found = Vec::new();
    for dir in ["crates", "vendor"] {
        for entry in std::fs::read_dir(root.join(dir)).expect("workspace dir") {
            let manifest = entry.expect("dir entry").path().join("Cargo.toml");
            if manifest.is_file() {
                found.push(manifest);
            }
        }
    }
    assert_eq!(
        found.len(),
        13,
        "expected 13 member manifests, got {found:?}"
    );
    found
}

#[test]
fn dependency_dag_is_acyclic_and_layered() {
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for manifest in member_manifests() {
        let (name, deps) = scan_manifest(&manifest);
        let internal: BTreeSet<String> = deps
            .keys()
            .filter(|d| WORKSPACE_MANAGED.contains(&d.as_str()))
            .cloned()
            .collect();
        graph.insert(name, internal);
    }

    // Kahn's algorithm: a topological order exists iff the DAG is acyclic.
    let mut remaining = graph.clone();
    let mut order = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<String> = remaining
            .iter()
            .filter(|(_, deps)| deps.iter().all(|d| !remaining.contains_key(d)))
            .map(|(n, _)| n.clone())
            .collect();
        assert!(
            !ready.is_empty(),
            "dependency cycle among crates: {:?}",
            remaining.keys().collect::<Vec<_>>()
        );
        for name in ready {
            remaining.remove(&name);
            order.push(name);
        }
    }

    // The intended layering: lower layers must not depend on higher ones.
    let position: BTreeMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    for (lower, upper) in [
        ("tkspmv_fixed", "tkspmv_sparse"),
        ("tkspmv_fixed", "tkspmv_hw"),
        ("tkspmv_sparse", "tkspmv"),
        ("tkspmv_hw", "tkspmv"),
        ("tkspmv", "tkspmv_baselines"),
        ("tkspmv", "tkspmv_serve"),
        ("tkspmv_baselines", "tkspmv_eval"),
        ("tkspmv_eval", "tkspmv_bench"),
        ("tkspmv_serve", "tkspmv_bench"),
        ("tkspmv_serve", "tkspmv_fabric"),
        ("tkspmv_fabric", "tkspmv_bench"),
        ("tkspmv_obs", "tkspmv_serve"),
        ("tkspmv_obs", "tkspmv_fabric"),
        ("tkspmv_obs", "tkspmv"),
    ] {
        assert!(
            position[lower] < position[upper],
            "layering violated: {lower} should sort before {upper} in {order:?}"
        );
        assert!(
            !graph[lower].contains(upper),
            "{lower} must not depend on {upper}"
        );
    }
}

#[test]
fn shared_dependencies_all_come_from_workspace_table() {
    let root_manifest = repo_root().join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest).expect("root Cargo.toml");

    // Every workspace-managed name must be pinned exactly once in the
    // root [workspace.dependencies] table.
    let mut in_table = BTreeSet::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if section == "workspace.dependencies" {
            if let Some((key, _)) = line.split_once('=') {
                in_table.insert(key.trim().split('.').next().unwrap().to_string());
            }
        }
    }
    for name in WORKSPACE_MANAGED {
        assert!(
            in_table.contains(*name),
            "{name} missing from [workspace.dependencies]"
        );
    }

    // And every member reference to one of those names must defer to it.
    for manifest in member_manifests() {
        let (member, deps) = scan_manifest(&manifest);
        for (dep, via_workspace) in deps {
            if WORKSPACE_MANAGED.contains(&dep.as_str()) {
                assert!(
                    via_workspace,
                    "{member} pins `{dep}` directly; use `{dep} = {{ workspace = true }}`"
                );
            }
        }
    }
}

#[test]
fn workspace_members_match_directories_on_disk() {
    let text = std::fs::read_to_string(repo_root().join("Cargo.toml")).expect("root Cargo.toml");
    for manifest in member_manifests() {
        let dir = manifest.parent().unwrap();
        let rel = dir
            .strip_prefix(repo_root())
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        assert!(
            text.contains(&format!("\"{rel}\"")),
            "{rel} exists on disk but is not listed in [workspace] members"
        );
    }
}
