//! Guards against manifest drift: the crate dependency DAG must stay
//! acyclic and layered, every shared dependency must defer to
//! `[workspace.dependencies]`, and the member list must match the disk.
//!
//! The checks themselves live in `tkspmv_check` (`--manifests` mode of
//! `cargo run -p tkspmv_check`), where CI runs them alongside the other
//! invariant lints; this test is the `cargo test` entry point to the
//! same code, so a plain test run still catches drift.

use tkspmv_check::diag::Report;

#[test]
fn manifests_have_no_drift() {
    let root = tkspmv_check::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the integration crate");
    let mut report = Report::default();
    tkspmv_check::manifests::check(&root, &mut report);
    assert!(
        report.diagnostics.is_empty(),
        "manifest drift:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
