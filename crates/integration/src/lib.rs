//! placeholder
