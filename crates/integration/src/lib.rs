//! Workspace-level integration harness.
//!
//! This crate owns the cross-crate test suites in the repository-root
//! `tests/` directory and the runnable `examples/` (see its
//! `Cargo.toml` for the target wiring), and provides [`smoke_test`]: a
//! one-call end-to-end exercise of the whole stack — synthetic matrix →
//! BS-CSR encode → [`Accelerator`] query → comparison against the exact
//! CPU baseline. CI and future backends can call it as a cheap
//! is-the-world-sane probe before running the full evaluation.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};

/// Outcome of one [`smoke_test`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeReport {
    /// Rows in the synthetic collection.
    pub num_rows: usize,
    /// Non-zeros actually generated.
    pub nnz: usize,
    /// Result length requested from both engines.
    pub k: usize,
    /// Fraction of the exact top-K the accelerator retrieved.
    pub precision: f64,
    /// Modelled accelerator execution time in seconds.
    pub modelled_seconds: f64,
}

/// Parameters for [`smoke_test`]; `Default` matches a laptop-friendly
/// slice of the paper's Table III workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmokeConfig {
    /// Synthetic collection rows.
    pub num_rows: usize,
    /// Embedding dimensionality.
    pub num_cols: usize,
    /// Average non-zeros per row.
    pub avg_nnz_per_row: usize,
    /// Results requested (`K`).
    pub k: usize,
    /// Accelerator cores (`c`).
    pub cores: u32,
    /// Numeric format under test.
    pub precision: Precision,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        SmokeConfig {
            num_rows: 2_000,
            num_cols: 256,
            avg_nnz_per_row: 20,
            k: 50,
            cores: 16,
            precision: Precision::Fixed20,
            seed: 77,
        }
    }
}

/// Runs the full pipeline once and scores it against the exact oracle.
///
/// Per-core scratchpad depth `k` is chosen as `max(8, ceil(K / c))`,
/// the paper's sizing rule (`k·c ≥ K`) with its default floor of 8.
///
/// # Errors
///
/// Propagates any [`tkspmv::EngineError`] from accelerator
/// construction, matrix loading, or the query itself.
///
/// # Example
///
/// ```
/// use tkspmv_integration::{smoke_test, SmokeConfig};
///
/// let report = smoke_test(SmokeConfig::default())?;
/// assert!(report.precision > 0.9, "precision {}", report.precision);
/// # Ok::<(), tkspmv::EngineError>(())
/// ```
pub fn smoke_test(config: SmokeConfig) -> Result<SmokeReport, tkspmv::EngineError> {
    let csr = SyntheticConfig {
        num_rows: config.num_rows,
        num_cols: config.num_cols,
        avg_nnz_per_row: config.avg_nnz_per_row,
        distribution: NnzDistribution::Uniform,
        seed: config.seed,
    }
    .generate();

    // k·c ≥ K with the paper's floor of 8; cores == 0 is passed through
    // unscaled so the builder reports the configuration error itself.
    let scratch_k = match config.cores as usize {
        0 => config.k,
        c => config.k.div_ceil(c).max(8),
    };
    let acc = Accelerator::builder()
        .precision(config.precision)
        .cores(config.cores)
        .k(scratch_k)
        .build()?;
    let loaded = acc.load_matrix(&csr)?;

    let x = query_vector(config.num_cols, config.seed ^ 0xBEEF);
    let out = acc.query(&loaded, &x, config.k)?;
    let truth = exact_topk(&csr, x.as_slice(), config.k);

    let truth_set: std::collections::BTreeSet<u32> = truth.indices().into_iter().collect();
    let hits = out
        .topk
        .indices()
        .into_iter()
        .filter(|i| truth_set.contains(i))
        .count();

    Ok(SmokeReport {
        num_rows: csr.num_rows(),
        nnz: csr.nnz(),
        k: config.k,
        precision: hits as f64 / truth_set.len().max(1) as f64,
        modelled_seconds: out.perf.seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_smoke_is_accurate_and_sized() {
        let report = smoke_test(SmokeConfig::default()).unwrap();
        assert_eq!(report.num_rows, 2_000);
        assert!(report.nnz > 0);
        assert!(report.precision > 0.9, "precision {}", report.precision);
        assert!(
            report.modelled_seconds > 0.0,
            "perf model must report positive time"
        );
    }

    #[test]
    fn smoke_covers_all_fpga_precisions() {
        for precision in [
            Precision::Fixed32,
            Precision::Fixed25,
            Precision::Fixed20,
            Precision::Float32,
        ] {
            let report = smoke_test(SmokeConfig {
                precision,
                ..SmokeConfig::default()
            })
            .unwrap();
            assert!(
                report.precision > 0.9,
                "{precision:?}: precision {}",
                report.precision
            );
        }
    }

    #[test]
    fn degenerate_single_core_float32_is_exact() {
        // One core with k ≥ K removes the partitioning approximation,
        // and Float32 removes quantization: the retrieved row set must
        // equal the oracle's exactly.
        let report = smoke_test(SmokeConfig {
            cores: 1,
            k: 10,
            num_rows: 200,
            precision: Precision::Float32,
            ..SmokeConfig::default()
        })
        .unwrap();
        assert_eq!(report.k, 10);
        assert_eq!(report.precision, 1.0);
    }

    #[test]
    fn invalid_core_count_is_rejected() {
        let err = smoke_test(SmokeConfig {
            cores: 0,
            ..SmokeConfig::default()
        });
        assert!(err.is_err());
    }
}
