//! Property-based tests of the engine's core invariants on arbitrary
//! matrices: the emulated datapath must agree with a plain-Rust oracle
//! for any input, not just the evaluation workloads.

use proptest::prelude::*;
use tkspmv::{quantize_vector, run_core, Fidelity, TopKTracker};
use tkspmv_fixed::{SpmvScalar, F32, Q1_31};
use tkspmv_sparse::{BsCsr, Csr, PacketLayout};

/// A random matrix plus a random non-negative query vector.
fn arb_problem() -> impl Strategy<Value = (Csr, Vec<f32>)> {
    (1usize..30, 2usize..120).prop_flat_map(|(rows, cols)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 0..150)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 7 % 97) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let query = proptest::collection::vec(0.0f32..1.0, cols..=cols);
        (matrix, query)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn core_q31_matches_oracle_on_any_matrix((csr, x) in arb_problem()) {
        // The engine's accumulators, decoded to f64, must equal the
        // quantised oracle within accumulated rounding (~nnz * 2^-31).
        // Sums are non-negative, so the hardware's saturating adder
        // equals min(exact sum, accumulator ceiling); random test rows
        // are not L2-normalised (unlike the application domain), so the
        // ceiling is reachable and must be part of the contract.
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        let bs = BsCsr::encode::<Q1_31>(&csr, layout);
        let xq = quantize_vector::<Q1_31>(&x);
        let out = run_core::<Q1_31>(&bs, &xq, csr.num_rows(), Fidelity::Reference);
        prop_assert_eq!(out.topk.len(), csr.num_rows());
        let exact = csr.spmv_exact(&x);
        let acc_ceiling = Q1_31::acc_to_f64(u64::MAX);
        for &(row, acc) in &out.topk {
            let got = Q1_31::acc_to_f64(acc);
            let want = exact[row as usize].min(acc_ceiling);
            prop_assert!(
                (got - want).abs() < 1e-5,
                "row {}: engine {} vs oracle {}", row, got, want
            );
        }
    }

    #[test]
    fn core_f32_is_bit_exact_with_row_major_sum((csr, x) in arb_problem()) {
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        let bs = BsCsr::encode::<F32>(&csr, layout);
        let xq = quantize_vector::<F32>(&x);
        let out = run_core::<F32>(&bs, &xq, csr.num_rows(), Fidelity::Reference);
        for &(row, acc) in &out.topk {
            // Left-to-right f32 summation, exactly as the pipeline does.
            let mut want = 0.0f32;
            for (c, v) in csr.row(row as usize) {
                want += v * x[c as usize];
            }
            prop_assert_eq!(F32::acc_to_f64(acc), want as f64);
        }
    }

    #[test]
    fn faithful_never_reports_more_rows_than_reference((csr, x) in arb_problem()) {
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        let bs = BsCsr::encode::<Q1_31>(&csr, layout);
        let xq = quantize_vector::<Q1_31>(&x);
        let reference = run_core::<Q1_31>(&bs, &xq, 8, Fidelity::Reference);
        let faithful = run_core::<Q1_31>(
            &bs,
            &xq,
            8,
            Fidelity::Faithful { rows_per_packet: 2 },
        );
        prop_assert_eq!(
            faithful.stats.rows_finished + faithful.stats.rows_dropped,
            reference.stats.rows_finished
        );
        // Every faithful result row also exists in the reference run's
        // candidate set (it cannot invent rows).
        prop_assert!(faithful.topk.len() <= reference.topk.len());
    }

    #[test]
    fn validate_passes_for_every_encoded_matrix((csr, _x) in arb_problem()) {
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        let bs = BsCsr::encode::<Q1_31>(&csr, layout);
        prop_assert_eq!(bs.validate(), Ok(()));
    }

    #[test]
    fn tracker_matches_reference_selection(
        items in proptest::collection::vec((0u32..1000, 0u64..1_000_000), 1..300),
        k in 1usize..20,
    ) {
        let mut tracker = TopKTracker::new(k);
        for &(i, v) in &items {
            tracker.insert(i, v);
        }
        let got: Vec<u64> = tracker.into_sorted().into_iter().map(|(_, v)| v).collect();
        let mut want: Vec<u64> = items.iter().map(|&(_, v)| v).collect();
        want.sort_unstable_by(|a, b| b.cmp(a));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn metrics_stay_in_range(
        retrieved in proptest::collection::vec(0u32..50, 0..30),
        truth in proptest::collection::vec((0u32..50, 0.0f64..1.0), 0..30),
    ) {
        use tkspmv_eval::metrics::{kendall_tau, ndcg, precision_at_k};
        let truth_idx: Vec<u32> = truth.iter().map(|&(i, _)| i).collect();
        let p = precision_at_k(&retrieved, &truth_idx);
        prop_assert!((0.0..=1.0).contains(&p));
        let tau = kendall_tau(&retrieved, &truth_idx);
        prop_assert!((-1.0..=1.0).contains(&tau));
        let n = ndcg(&retrieved, &truth);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&n), "ndcg {}", n);
    }
}
