//! Cross-precision behaviour: accuracy ordering, agreement between
//! designs, quantisation error propagation.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_eval::metrics::RankingQuality;
use tkspmv_fixed::{Precision, QFormat};
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

fn matrix() -> Csr {
    SyntheticConfig {
        num_rows: 4000,
        num_cols: 512,
        avg_nnz_per_row: 20,
        distribution: NnzDistribution::Uniform,
        seed: 21,
    }
    .generate()
}

fn mean_quality(precision: Precision, csr: &Csr, big_k: usize) -> RankingQuality {
    let acc = Accelerator::builder()
        .precision(precision)
        .cores(32)
        .k(8)
        .build()
        .unwrap();
    let m = acc.load_matrix(csr).unwrap();
    let mut samples = Vec::new();
    for q in 0..5u64 {
        let x = query_vector(csr.num_cols(), 300 + q);
        let truth = exact_topk(csr, x.as_slice(), big_k);
        let out = acc.query(&m, &x, big_k).unwrap();
        samples.push(RankingQuality::score(&out.topk.indices(), truth.entries()));
    }
    RankingQuality::mean(&samples)
}

#[test]
fn wider_fixed_point_is_at_least_as_accurate() {
    let csr = matrix();
    let q20 = mean_quality(Precision::Fixed20, &csr, 100);
    let q25 = mean_quality(Precision::Fixed25, &csr, 100);
    let q32 = mean_quality(Precision::Fixed32, &csr, 100);
    // Allow tiny non-monotonicity from tie-breaks; the trend must hold.
    assert!(
        q25.ndcg >= q20.ndcg - 0.005,
        "25b {} vs 20b {}",
        q25.ndcg,
        q20.ndcg
    );
    assert!(
        q32.ndcg >= q25.ndcg - 0.005,
        "32b {} vs 25b {}",
        q32.ndcg,
        q25.ndcg
    );
    assert!(
        q20.precision > 0.95,
        "even 20-bit stays high: {}",
        q20.precision
    );
}

#[test]
fn fixed32_and_float32_agree_closely() {
    // Q1.31 resolution (4.7e-10) is far finer than f32's 1.2e-7 around
    // 1.0; with identical partitioning both designs rank nearly
    // identically.
    let csr = matrix();
    let a32 = Accelerator::builder()
        .precision(Precision::Fixed32)
        .cores(16)
        .k(8)
        .build()
        .unwrap();
    let af = Accelerator::builder()
        .precision(Precision::Float32)
        .cores(16)
        .k(8)
        .build()
        .unwrap();
    let m32 = a32.load_matrix(&csr).unwrap();
    let mf = af.load_matrix(&csr).unwrap();
    for q in 0..3u64 {
        let x = query_vector(512, 600 + q);
        let i32s = a32.query(&m32, &x, 50).unwrap().topk.indices();
        let ifs = af.query(&mf, &x, 50).unwrap().topk.indices();
        let same = i32s.iter().zip(&ifs).filter(|(a, b)| a == b).count();
        assert!(same >= 45, "query {q}: only {same}/50 positions agree");
    }
}

#[test]
fn score_error_bounded_by_quantisation_theory() {
    // For an L2-normalised row with d entries, the quantised dot product
    // differs from exact by at most ~(d + 1) * eps/2 (value + vector
    // quantisation), far below one part in 10^3 for 20-bit.
    let csr = matrix();
    let acc = Accelerator::builder()
        .precision(Precision::Fixed20)
        .cores(1)
        .k(100)
        .build()
        .unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let x = query_vector(512, 8);
    let out = acc.query(&m, &x, 100).unwrap();
    let exact = csr.spmv_exact(x.as_slice());
    let eps = QFormat::new(20).epsilon();
    let max_d = csr.row_stats().max_nnz as f64;
    let bound = (max_d + 2.0) * eps; // generous union of both quantisers
    for &(row, score) in out.topk.entries() {
        let err = (score - exact[row as usize]).abs();
        assert!(err <= bound, "row {row}: err {err} > bound {bound}");
    }
}

#[test]
fn half16_is_worst_but_usable() {
    let csr = matrix();
    let h = mean_quality(Precision::Half16, &csr, 100);
    let q20 = mean_quality(Precision::Fixed20, &csr, 100);
    assert!(h.precision > 0.85, "f16 usable: {}", h.precision);
    assert!(
        q20.ndcg >= h.ndcg - 0.002,
        "20-bit fixed ({}) >= f16 ({})",
        q20.ndcg,
        h.ndcg
    );
}
