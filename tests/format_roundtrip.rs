//! Property-based round-trip tests for the storage formats.

use proptest::prelude::*;
use tkspmv_fixed::{F32, Q1_19, Q1_24, Q1_31};
use tkspmv_sparse::{BsCsr, CooPacketKind, CooPackets, Csr, PacketLayout};

/// Strategy: a random sparse matrix as sorted unique triplets with
/// values in the unsigned datapath domain (0, 1].
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (1usize..40, 1usize..200).prop_flat_map(|(rows, cols)| {
        proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 0..200).prop_map(
            move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i % 997) + 1) as f32 / 1000.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid by construction")
            },
        )
    })
}

fn assert_csr_close(a: &Csr, b: &Csr, tol: f32) {
    assert_eq!(a.num_rows(), b.num_rows());
    assert_eq!(a.num_cols(), b.num_cols());
    assert_eq!(a.row_ptr(), b.row_ptr());
    assert_eq!(a.col_idx(), b.col_idx());
    for (x, y) in a.values().iter().zip(b.values()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bscsr_roundtrip_q20(csr in arb_matrix()) {
        let layout = PacketLayout::solve(csr.num_cols(), 20).unwrap();
        let bs = BsCsr::encode::<Q1_19>(&csr, layout);
        // 20-bit grid: half-ulp error.
        assert_csr_close(&csr, &bs.decode::<Q1_19>(), 1.0 / (1 << 19) as f32);
    }

    #[test]
    fn bscsr_roundtrip_q25(csr in arb_matrix()) {
        let layout = PacketLayout::solve(csr.num_cols(), 25).unwrap();
        let bs = BsCsr::encode::<Q1_24>(&csr, layout);
        assert_csr_close(&csr, &bs.decode::<Q1_24>(), 1.0 / (1 << 24) as f32);
    }

    #[test]
    fn bscsr_roundtrip_q32_and_f32(csr in arb_matrix()) {
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        // Q1.31 quantisation error is below f32 resolution here.
        let bs = BsCsr::encode::<Q1_31>(&csr, layout);
        assert_csr_close(&csr, &bs.decode::<Q1_31>(), 2e-7);
        // F32 is bit-exact.
        let bs = BsCsr::encode::<F32>(&csr, layout);
        prop_assert_eq!(&csr, &bs.decode::<F32>());
    }

    #[test]
    fn bscsr_entry_stream_matches_csr(csr in arb_matrix()) {
        // Row/col reconstruction from packet metadata alone must agree
        // with the source CSR (ignoring placeholder entries).
        let layout = PacketLayout::solve(csr.num_cols(), 32).unwrap();
        let bs = BsCsr::encode::<F32>(&csr, layout);
        let mut decoded: Vec<(u32, u32)> = Vec::new();
        let mut per_row = vec![0u32; csr.num_rows()];
        for (r, c, _) in bs.entries() {
            per_row[r as usize] += 1;
            decoded.push((r, c));
        }
        // Each row contributed max(1, nnz) entries (placeholders for
        // empty rows).
        for (r, &count) in per_row.iter().enumerate() {
            prop_assert_eq!(count as usize, csr.row_nnz(r).max(1));
        }
        // Non-placeholder entries appear in CSR order.
        let expected: Vec<(u32, u32)> = (0..csr.num_rows())
            .flat_map(|r| csr.row(r).map(move |(c, _)| (r as u32, c)))
            .collect();
        let real: Vec<(u32, u32)> = decoded
            .into_iter()
            .filter(|&(r, c)| !(csr.row_nnz(r as usize) == 0 && c == 0))
            .collect();
        prop_assert_eq!(real, expected);
    }

    #[test]
    fn mtx_write_read_roundtrip(csr in arb_matrix()) {
        // MatrixMarket text is a lossless carrier for f32 values (Rust
        // prints round-trippable float literals).
        let mut buf = Vec::new();
        tkspmv_sparse::io::write_mtx(&mut buf, &csr).expect("write to Vec");
        let back = tkspmv_sparse::io::read_mtx(buf.as_slice()).expect("parse own output");
        prop_assert_eq!(&csr, &back);
    }

    #[test]
    fn coo_packets_roundtrip(csr in arb_matrix()) {
        let packed = CooPackets::encode::<F32>(&csr, CooPacketKind::Naive);
        prop_assert_eq!(&csr, &packed.decode::<F32>());
        prop_assert_eq!(packed.nnz(), csr.nnz() as u64);
    }

    #[test]
    fn packet_count_matches_layout_arithmetic(csr in arb_matrix()) {
        let layout = PacketLayout::solve(csr.num_cols(), 20).unwrap();
        let bs = BsCsr::encode::<Q1_19>(&csr, layout);
        prop_assert_eq!(
            bs.num_packets() as u64,
            layout.packets_for(bs.stored_entries())
        );
        prop_assert_eq!(bs.size_bytes(), bs.num_packets() as u64 * 64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bit_writer_reader_inverse(fields in proptest::collection::vec((0u64..u64::MAX, 1u32..33), 1..20)) {
        use tkspmv_sparse::{BitReader, BitWriter};
        let total: u32 = fields.iter().map(|&(_, bits)| bits).sum();
        prop_assume!(total <= 512);
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, bits)| (v & ((1u64 << bits) - 1), bits))
            .collect();
        let mut w = BitWriter::new();
        for &(v, bits) in &masked {
            w.write(v, bits);
        }
        let packet = w.finish();
        let mut r = BitReader::new(&packet);
        for &(v, bits) in &masked {
            prop_assert_eq!(r.read(bits), v);
        }
    }
}
