//! Degenerate inputs are rejected the same way by every engine in the
//! workspace — the emulated accelerator, the CPU and GPU baselines, and
//! the staged [`PrunedBackend`] pipeline wrapped around each of them:
//!
//! - `K = 0` is a typed [`EngineError::BadQuery`] at query time;
//! - an empty collection (zero rows) is a typed
//!   [`EngineError::InvalidConfig`] at prepare time;
//! - a query vector of the wrong length is a typed
//!   [`EngineError::BadQuery`];
//!
//! never a panic, and never a backend-specific error shape a caller
//! would have to special-case.

use std::sync::Arc;

use tkspmv::backend::{QueryBatch, QueryTier, TopKBackend};
use tkspmv::{Accelerator, EngineError, PrunedBackend};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision, GpuTopK};
use tkspmv_fixed::PruneBits;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

/// Every plain backend family, plus the staged pipeline wrapped around
/// each of them — the wrapper must not soften or reshape the contract.
fn all_backends() -> Vec<Arc<dyn TopKBackend>> {
    let plain: Vec<Arc<dyn TopKBackend>> = vec![
        Arc::new(
            Accelerator::builder()
                .cores(4)
                .k(8)
                .build()
                .expect("small design builds"),
        ),
        Arc::new(CpuTopK::new(2)),
        Arc::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F32)),
    ];
    let mut backends = plain.clone();
    for inner in plain {
        backends.push(Arc::new(
            PrunedBackend::new(inner, PruneBits::Eight, 4).expect("factor 4 is valid"),
        ));
    }
    backends
}

fn collection() -> Csr {
    SyntheticConfig {
        num_rows: 300,
        num_cols: 64,
        avg_nnz_per_row: 10,
        distribution: NnzDistribution::Uniform,
        seed: 23,
    }
    .generate()
}

#[test]
fn zero_k_is_a_typed_bad_query_everywhere() {
    let csr = collection();
    for backend in all_backends() {
        let prepared = backend.prepare(&csr).expect("prepare");
        let x = query_vector(64, 1);
        assert!(
            matches!(
                backend.query(&prepared, &x, 0),
                Err(EngineError::BadQuery { .. })
            ),
            "{}: K = 0 must be BadQuery",
            backend.name()
        );
        // The tiered batch entry points agree with the single-query one.
        let batch = QueryBatch::random(2, 64, 5);
        for tier in [
            QueryTier::Exact,
            QueryTier::Pruned {
                shortlist_factor: 2,
            },
        ] {
            let got = backend.query_batch_tiered(&prepared, &batch, 0, tier);
            assert!(
                matches!(got, Err(EngineError::BadQuery { .. })),
                "{}: K = 0 at tier {tier} must be BadQuery",
                backend.name()
            );
        }
    }
}

#[test]
fn empty_collections_are_rejected_at_prepare_everywhere() {
    let empty = Csr::from_triplets(0, 16, &[]).expect("zero-row CSR builds at the format layer");
    for backend in all_backends() {
        assert!(
            matches!(
                backend.prepare(&empty),
                Err(EngineError::InvalidConfig { .. })
            ),
            "{}: an empty collection must be InvalidConfig at prepare",
            backend.name()
        );
    }
}

#[test]
fn wrong_query_length_is_a_typed_bad_query_everywhere() {
    let csr = collection();
    for backend in all_backends() {
        let prepared = backend.prepare(&csr).expect("prepare");
        let short = query_vector(63, 1);
        assert!(
            matches!(
                backend.query(&prepared, &short, 5),
                Err(EngineError::BadQuery { .. })
            ),
            "{}: a 63-entry query against 64 columns must be BadQuery",
            backend.name()
        );
    }
}
