//! End-to-end pipeline tests: generator → accelerator → results vs the
//! exact oracle, across all precisions and dataset kinds.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_eval::metrics::RankingQuality;
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::{glove_like, query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

fn uniform_matrix() -> Csr {
    SyntheticConfig {
        num_rows: 5_000,
        num_cols: 512,
        avg_nnz_per_row: 20,
        distribution: NnzDistribution::Uniform,
        seed: 11,
    }
    .generate()
}

fn gamma_matrix() -> Csr {
    SyntheticConfig {
        num_rows: 5_000,
        num_cols: 1024,
        avg_nnz_per_row: 40,
        distribution: NnzDistribution::table3_gamma(),
        seed: 13,
    }
    .generate()
}

#[test]
fn paper_design_reaches_97_percent_precision() {
    // Figure 7's headline: precision above 97% across the board, even
    // for the 20-bit design at K = 100.
    for csr in [uniform_matrix(), gamma_matrix(), glove_like(5_000, 17)] {
        let acc = Accelerator::builder()
            .precision(Precision::Fixed20)
            .cores(32)
            .k(8)
            .build()
            .unwrap();
        let m = acc.load_matrix(&csr).unwrap();
        let mut precisions = Vec::new();
        for q in 0..3u64 {
            let x = query_vector(csr.num_cols(), 900 + q);
            let truth = exact_topk(&csr, x.as_slice(), 100);
            let out = acc.query(&m, &x, 100).unwrap();
            precisions.push(RankingQuality::score(&out.topk.indices(), truth.entries()).precision);
        }
        let mean = precisions.iter().sum::<f64>() / precisions.len() as f64;
        assert!(mean > 0.95, "mean precision {mean}");
    }
}

#[test]
fn top_ranked_rows_are_never_lost() {
    // §III-A: "as we always retrieve the top k values, the approximation
    // does not affect the best-ranked rows". The global top-1..top-8 (=k)
    // must be exact.
    let csr = gamma_matrix();
    let acc = Accelerator::builder().cores(32).k(8).build().unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    for q in 0..5u64 {
        let x = query_vector(csr.num_cols(), 40 + q);
        let truth = exact_topk(&csr, x.as_slice(), 8);
        let out = acc.query(&m, &x, 8).unwrap();
        assert_eq!(out.topk.indices(), truth.indices(), "query {q}");
    }
}

#[test]
fn all_precisions_complete_with_sane_results() {
    let csr = uniform_matrix();
    let x = query_vector(512, 3);
    let truth = exact_topk(&csr, x.as_slice(), 50);
    for precision in [
        Precision::Fixed20,
        Precision::Fixed25,
        Precision::Fixed32,
        Precision::Float32,
        Precision::Half16,
    ] {
        let acc = Accelerator::builder()
            .precision(precision)
            .cores(16)
            .k(8)
            .build()
            .unwrap();
        let m = acc.load_matrix(&csr).unwrap();
        let out = acc.query(&m, &x, 50).unwrap();
        assert_eq!(out.topk.len(), 50, "{precision:?}");
        let q = RankingQuality::score(&out.topk.indices(), truth.entries());
        assert!(
            q.precision > 0.85,
            "{precision:?}: precision {}",
            q.precision
        );
        // Scores must be descending and in [0, ~1].
        let scores = out.topk.scores();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{precision:?}");
        assert!(scores[0] <= 1.5, "{precision:?}: score {}", scores[0]);
    }
}

#[test]
fn performance_report_is_consistent() {
    let csr = uniform_matrix();
    let acc = Accelerator::builder().cores(32).k(8).build().unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let out = acc.query(&m, &query_vector(512, 1), 10).unwrap();
    let perf = out.perf;
    assert_eq!(perf.nnz, csr.nnz() as u64);
    assert!(perf.kernel_seconds > 0.0);
    assert!(perf.seconds > perf.kernel_seconds, "host overhead added");
    // Total packets match the loaded partitions.
    let expect: u64 = m
        .partitions
        .iter()
        .map(|(_, p)| p.num_packets() as u64)
        .sum();
    assert_eq!(perf.total_packets, expect);
    // Bytes = packets * 64.
    assert_eq!(perf.bytes_streamed(), expect * 64);
}

#[test]
fn deterministic_across_runs() {
    let csr = gamma_matrix();
    let acc = Accelerator::builder().cores(8).k(16).build().unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let x = query_vector(1024, 77);
    let a = acc.query(&m, &x, 100).unwrap();
    let b = acc.query(&m, &x, 100).unwrap();
    assert_eq!(a.topk, b.topk);
}

#[test]
fn single_core_equals_exact_up_to_quantisation() {
    // One partition, k >= K, 32-bit fixed point: the engine is a plain
    // exact Top-K evaluator.
    let csr = uniform_matrix();
    let acc = Accelerator::builder()
        .precision(Precision::Fixed32)
        .cores(1)
        .k(100)
        .build()
        .unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let x = query_vector(512, 5);
    let out = acc.query(&m, &x, 100).unwrap();
    let truth = exact_topk(&csr, x.as_slice(), 100);
    let hits = out
        .topk
        .indices()
        .iter()
        .filter(|i| truth.indices().contains(i))
        .count();
    assert!(hits >= 99, "hits {hits}");
}
