//! The partitioned approximation in practice vs its theory: measured
//! precision must track the closed-form expectation of §III-A.

use tkspmv::approx::{expected_precision, monte_carlo_precision};
use tkspmv::{Accelerator, TopKResult};
use tkspmv_baselines::cpu::exact_topk;
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};

#[test]
fn measured_precision_tracks_theory() {
    // Small k and few partitions make the approximation lossy enough to
    // measure: N = 4000, c = 4, k = 8, K = 24 -> E[P] well below 1.
    let n = 4000u64;
    let (c, k, big_k) = (4u32, 8usize, 24usize);
    let analytic = expected_precision(n, c as u64, k as u64, big_k as u64);
    assert!(analytic < 0.999, "setup must be lossy, got {analytic}");

    let csr = SyntheticConfig {
        num_rows: n as usize,
        num_cols: 256,
        avg_nnz_per_row: 12,
        distribution: NnzDistribution::Uniform,
        seed: 3,
    }
    .generate();
    let acc = Accelerator::builder()
        .precision(Precision::Fixed32)
        .cores(c)
        .k(k)
        .build()
        .unwrap();
    let m = acc.load_matrix(&csr).unwrap();

    let queries = 40;
    let mut total = 0.0;
    for q in 0..queries {
        let x = query_vector(256, 1000 + q);
        let truth: std::collections::HashSet<u32> = exact_topk(&csr, x.as_slice(), big_k)
            .indices()
            .into_iter()
            .collect();
        let got = acc.query(&m, &x, big_k).unwrap();
        let hits = got
            .topk
            .indices()
            .iter()
            .filter(|i| truth.contains(i))
            .count();
        total += hits as f64 / big_k as f64;
    }
    let measured = total / queries as f64;
    // Theory assumes uniformly random placement of top values; real
    // embeddings are close enough that 5 points of tolerance holds.
    assert!(
        (measured - analytic).abs() < 0.05,
        "measured {measured:.3} vs analytic {analytic:.3}"
    );
}

#[test]
fn monte_carlo_and_closed_form_agree_on_table1_grid() {
    for n in [1_000_000u64, 10_000_000] {
        for c in [16u64, 28, 32] {
            for big_k in [8u64, 32, 100] {
                let analytic = expected_precision(n, c, 8, big_k);
                let mc = monte_carlo_precision(n, c, 8, big_k, 3000, n ^ c ^ big_k);
                assert!(
                    (analytic - mc).abs() < 0.012,
                    "N={n} c={c} K={big_k}: {analytic:.4} vs {mc:.4}"
                );
            }
        }
    }
}

#[test]
fn merge_of_partition_topk_is_order_correct() {
    // Merging per-partition results must equal running a flat Top-K on
    // the concatenated candidate pool.
    let parts: Vec<TopKResult> = vec![
        TopKResult::from_pairs(vec![(0, 0.9), (1, 0.3), (2, 0.5)]),
        TopKResult::from_pairs(vec![(10, 0.8), (11, 0.6), (12, 0.1)]),
        TopKResult::from_pairs(vec![(20, 0.7), (21, 0.2)]),
    ];
    let merged = TopKResult::merge(parts, 5);
    assert_eq!(merged.indices(), vec![0, 10, 20, 11, 2]);
}

#[test]
fn increasing_cores_improves_accuracy_monotonically() {
    // More partitions -> fewer top values per partition -> higher
    // precision (Table I's trend), measured end to end.
    let csr = SyntheticConfig {
        num_rows: 6000,
        num_cols: 256,
        avg_nnz_per_row: 12,
        distribution: NnzDistribution::table3_gamma(),
        seed: 5,
    }
    .generate();
    let big_k = 32;
    let mut last = 0.0;
    for cores in [4u32, 8, 32] {
        let acc = Accelerator::builder()
            .precision(Precision::Fixed32)
            .cores(cores)
            .k(8)
            .build()
            .unwrap();
        let m = acc.load_matrix(&csr).unwrap();
        let mut total = 0.0;
        let queries = 20;
        for q in 0..queries {
            let x = query_vector(256, 7000 + q);
            let truth: std::collections::HashSet<u32> = exact_topk(&csr, x.as_slice(), big_k)
                .indices()
                .into_iter()
                .collect();
            let got = acc.query(&m, &x, big_k).unwrap();
            total += got
                .topk
                .indices()
                .iter()
                .filter(|i| truth.contains(i))
                .count() as f64
                / big_k as f64;
        }
        let mean = total / queries as f64;
        assert!(
            mean >= last - 0.02,
            "precision must not degrade with cores: {mean} after {last}"
        );
        last = mean;
    }
    assert!(last > 0.99, "32 cores with k=8 covers K=32 nearly exactly");
}
