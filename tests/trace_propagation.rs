//! Distributed trace propagation, end to end: a traced query fanned out
//! over real TCP nodes must come back with one assembled span tree that
//! is structurally well-formed and consistent with the latency the
//! caller actually measured — across precision tiers, and with trace
//! ids surviving a compaction epoch hot-swap happening mid-stream.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tkspmv::backend::{QueryTier, TopKBackend};
use tkspmv::PrunedBackend;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_fabric::{DeltaCollection, NodeClient, NodeServer, Router, RouterConfig, ShardSpec};
use tkspmv_fixed::PruneBits;
use tkspmv_obs::{QueryTrace, TraceId};
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::{Csr, DenseVector};

const DEADLINE: Duration = Duration::from_secs(10);

/// Covering shortlist factor so the pruned tier is exact on the tiny
/// matrices this suite generates (c·k ≥ rows).
const COVERING_FACTOR: usize = 64;

/// One in-process node per partition behind a real TCP port.
fn spawn_fleet(csr: &Csr, parts: usize, pruned: bool) -> (Vec<NodeServer>, Vec<ShardSpec>) {
    let mut nodes = Vec::with_capacity(parts);
    let mut specs = Vec::with_capacity(parts);
    for (first_row, shard) in csr.partition_rows(parts) {
        let exact: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(1));
        let backend: Arc<dyn TopKBackend> = if pruned {
            Arc::new(
                PrunedBackend::new(exact, PruneBits::Eight, COVERING_FACTOR)
                    .expect("covering factor is valid"),
            )
        } else {
            exact
        };
        let service = TopKService::builder(backend)
            .batch_policy(BatchPolicy::immediate())
            .build(&shard)
            .expect("shard service builds");
        let collection = Arc::new(DeltaCollection::new(service, shard, first_row));
        let node = NodeServer::spawn(collection, "127.0.0.1:0").expect("node binds");
        specs.push(ShardSpec::single(node.local_addr().to_string()));
        nodes.push(node);
    }
    (nodes, specs)
}

fn traced_router(specs: Vec<ShardSpec>) -> Router {
    Router::connect(
        specs,
        RouterConfig {
            deadline: DEADLINE,
            trace: true,
            ..RouterConfig::default()
        },
    )
    .expect("router connects")
}

/// The structural and latency-consistency contract one assembled trace
/// must satisfy against the wall time the caller measured.
fn assert_trace_consistent(trace: &QueryTrace, answered: usize, wall: Duration) {
    assert!(
        trace.is_well_formed(),
        "malformed trace: {}",
        trace.to_json()
    );
    assert!(!trace.trace_id.is_zero(), "traced query got the zero id");
    assert_eq!(trace.root.name, "router");
    assert_eq!(
        trace.root.children.len(),
        answered,
        "one child per answered shard: {}",
        trace.to_json()
    );
    // The router's own total can only undershoot the caller's wall time
    // (the caller's interval contains it).
    let wall_us = wall.as_micros() as u64;
    assert!(
        trace.total_us <= wall_us,
        "trace total {}us exceeds measured wall {}us",
        trace.total_us,
        wall_us
    );
    for shard in &trace.root.children {
        // Per-node stage spans must sum to at most the shard's wire
        // round-trip, which itself fits the end-to-end total — the
        // "stage sums are consistent with measured latency" contract.
        let stage_sum: u64 = shard.stages.iter().map(|s| u64::from(s.dur_us)).sum();
        let child_sum: u64 = shard
            .children
            .iter()
            .flat_map(|n| n.stages.iter())
            .map(|s| u64::from(s.dur_us))
            .sum();
        assert!(
            stage_sum + child_sum <= u64::from(shard.dur_us).max(1),
            "shard stage sums {stage_sum}+{child_sum} exceed the shard interval {}us: {}",
            shard.dur_us,
            trace.to_json()
        );
        // Every answered node reported spans (the serve layer always
        // times queue/engine/merge, hooks or not).
        let node = shard.children.first().expect("node span report");
        assert_eq!(node.name, "node");
        assert!(
            !node.stages.is_empty(),
            "node reported no stage spans: {}",
            trace.to_json()
        );
    }
}

/// The acceptance path: a routed query across two real TCP nodes yields
/// one assembled trace tree consistent with the measured latency.
#[test]
fn routed_query_across_two_tcp_nodes_assembles_one_consistent_tree() {
    let csr = SyntheticConfig {
        num_rows: 200,
        num_cols: 64,
        avg_nnz_per_row: 8,
        distribution: NnzDistribution::Uniform,
        seed: 11,
    }
    .generate();
    let (nodes, specs) = spawn_fleet(&csr, 2, false);
    let router = traced_router(specs);

    let mut ids = BTreeSet::new();
    for seed in 0..5 {
        let x = query_vector(64, seed);
        let started = Instant::now();
        let result = router
            .query(x.as_slice(), 10, QueryTier::Exact)
            .expect("routed query");
        let wall = started.elapsed();
        assert!(result.coverage.is_complete());
        let trace = result.trace.expect("tracing is on");
        assert_trace_consistent(&trace, 2, wall);
        ids.insert(trace.trace_id.to_hex());
    }
    assert_eq!(ids.len(), 5, "every query got a distinct trace id");

    // The router's ring kept them for the dump tool.
    let slowest = router.slowest_traces(16);
    assert_eq!(slowest.len(), 5);
    assert!(slowest.windows(2).all(|w| w[0].total_us >= w[1].total_us));

    for node in nodes {
        node.shutdown();
    }
}

/// Trace ids must keep flowing — and spans keep landing in the node's
/// ring — while the node compacts its delta shard and hot-swaps the
/// serving epoch mid-stream.
#[test]
fn trace_ids_survive_compaction_epoch_swap_mid_stream() {
    let dim = 64;
    let csr = SyntheticConfig {
        num_rows: 80,
        num_cols: dim,
        avg_nnz_per_row: 8,
        distribution: NnzDistribution::Uniform,
        seed: 5,
    }
    .generate();
    let backend: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(1));
    let service = TopKService::builder(backend)
        .batch_policy(BatchPolicy::immediate())
        .build(&csr)
        .expect("service builds");
    // Keep a handle on the collection so the node's span ring stays
    // inspectable from the test.
    let collection = Arc::new(DeltaCollection::new(service, csr, 0));
    let node = NodeServer::spawn(Arc::clone(&collection), "127.0.0.1:0").expect("node binds");

    let mut client = NodeClient::connect(node.local_addr(), DEADLINE).expect("connect");
    let mut admin = NodeClient::connect(node.local_addr(), DEADLINE).expect("connect");

    // Rows for the delta shard so the fold has something to swap in.
    let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..4).map(|i| (vec![i], vec![1.5])).collect();
    admin.append(&rows, DEADLINE).expect("append");

    let mut sent = Vec::new();
    for i in 0..10 {
        if i == 5 {
            // Mid-stream: fold the delta and hot-swap the epoch.
            let (epoch, folded) = admin.compact(DEADLINE).expect("compact");
            assert!(epoch >= 1, "compaction must bump the serving epoch");
            assert_eq!(folded, 4);
        }
        let id = TraceId::generate();
        let x = query_vector(dim, 50 + i);
        let (entries, wire_trace) = client
            .query_traced(x.as_slice(), 5, QueryTier::Exact, id, DEADLINE)
            .expect("traced query");
        assert!(!entries.is_empty());
        let wire_trace = wire_trace.expect("traced query reports spans");
        assert!(wire_trace.total_us > 0);
        sent.push(id.to_hex());
    }
    assert!(collection.service().metrics().epoch >= 1);

    // Every id — from before and after the swap — landed in the ring.
    let recorded: BTreeSet<String> = collection
        .service()
        .slowest_spans(usize::MAX)
        .iter()
        .map(|r| r.trace_id.to_hex())
        .collect();
    for id in &sent {
        assert!(recorded.contains(id), "trace id {id} lost mid-stream");
    }
    node.shutdown();
}

/// A matrix sized for up to 3 shards, a query, a k, and a shard count.
fn arb_case() -> impl Strategy<Value = (Csr, DenseVector, usize, usize)> {
    (18usize..48, 8usize..24, 1usize..7, 1usize..4).prop_flat_map(|(rows, cols, k, parts)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..100)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 13 % 89) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let query =
            proptest::collection::vec(0.0f32..1.0, cols..=cols).prop_map(DenseVector::from_values);
        (matrix, query, Just(k), Just(parts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// S3: assembled span trees are well-formed (children inside
    /// parents, stage sums within intervals, total within the measured
    /// wall time) for any fleet shape, on both precision tiers.
    #[test]
    fn assembled_trace_trees_are_well_formed_across_tiers(
        (csr, x, k, parts) in arb_case(),
    ) {
        // Alternate tiers across cases (the vendored proptest stub has
        // no bool strategy).
        let pruned = k % 2 == 0;
        let k = k.min(csr.num_rows());
        let tier = if pruned {
            QueryTier::Pruned { shortlist_factor: COVERING_FACTOR }
        } else {
            QueryTier::Exact
        };
        let (nodes, specs) = spawn_fleet(&csr, parts, pruned);
        let router = traced_router(specs);
        let started = Instant::now();
        let result = router.query(x.as_slice(), k, tier).expect("routed query");
        let wall = started.elapsed();
        prop_assert!(result.coverage.is_complete());
        let trace = result.trace.expect("tracing is on");
        assert_trace_consistent(&trace, parts.min(csr.num_rows()), wall);
        for node in nodes {
            node.shutdown();
        }
    }
}
