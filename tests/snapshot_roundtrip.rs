//! Snapshot persistence properties, across every backend family:
//!
//! 1. **Round trip** — `PreparedMatrix::load` of a saved snapshot
//!    answers queries element-wise identical to the fresh `prepare` it
//!    was saved from. For the accelerator that means the *encoded*
//!    BS-CSR partitions survive the disk trip bit-exactly (the load
//!    skips the encode entirely); for the CSR-backed baselines the
//!    source matrix does.
//! 2. **Robustness** — a damaged snapshot (truncated, bit-flipped,
//!    version-skewed, precision-skewed) fails with the *right* typed
//!    [`SnapshotError`], never a panic, a wrap, or a silent mis-load.

use std::sync::Arc;

use proptest::prelude::*;
use tkspmv::backend::{BackendStats, PreparedMatrix, TopKBackend};
use tkspmv::{Accelerator, PrunedBackend};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision, GpuTopK};
use tkspmv_fixed::PruneBits;
use tkspmv_sparse::snapshot::{crc32, SnapshotError, PRUNE_SECTION_VERSION, SNAPSHOT_VERSION};
use tkspmv_sparse::{Csr, DenseVector};

/// Every backend family in the workspace, including the staged prune +
/// rescore pipeline (whose snapshots carry a companion section).
fn all_backends() -> Vec<Arc<dyn TopKBackend>> {
    vec![
        Arc::new(
            Accelerator::builder()
                .cores(4)
                .k(8)
                .build()
                .expect("small design builds"),
        ),
        Arc::new(CpuTopK::new(2)),
        Arc::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F32)),
        Arc::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F16).with_zero_cost_sort()),
        Arc::new(
            PrunedBackend::new(Arc::new(CpuTopK::new(2)), PruneBits::Eight, 4)
                .expect("factor 4 is valid"),
        ),
    ]
}

fn save_to_vec(backend: &dyn TopKBackend, prepared: &PreparedMatrix) -> Vec<u8> {
    let mut buf = Vec::new();
    prepared.save(backend, &mut buf).expect("snapshot saves");
    buf
}

/// A deterministic accelerator snapshot for the corruption table tests.
fn accelerator_snapshot_bytes() -> (Arc<dyn TopKBackend>, Vec<u8>) {
    let backend: Arc<dyn TopKBackend> = Arc::new(
        Accelerator::builder()
            .cores(4)
            .k(8)
            .build()
            .expect("small design builds"),
    );
    let csr = tkspmv_sparse::gen::SyntheticConfig {
        num_rows: 200,
        num_cols: 128,
        avg_nnz_per_row: 10,
        distribution: tkspmv_sparse::gen::NnzDistribution::Uniform,
        seed: 7,
    }
    .generate();
    let prepared = backend.prepare(&csr).expect("prepare");
    let bytes = save_to_vec(backend.as_ref(), &prepared);
    (backend, bytes)
}

/// Re-seals a patched snapshot so its CRC passes again — proving the
/// *semantic* layer (not just the checksum) catches the defect.
fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

#[test]
fn truncated_snapshots_fail_typed_at_every_cut() {
    let (backend, bytes) = accelerator_snapshot_bytes();
    // A dense sweep near the front (header fields) plus spread cuts
    // through the payload and the trailer.
    let mut cuts: Vec<usize> = (0..64).collect();
    cuts.extend([
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 5,
        bytes.len() - 1,
    ]);
    for cut in cuts {
        match PreparedMatrix::load(backend.as_ref(), &bytes[..cut]) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn flipped_crc_byte_fails_the_checksum() {
    let (backend, mut bytes) = accelerator_snapshot_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    match PreparedMatrix::load(backend.as_ref(), bytes.as_slice()) {
        Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_version_fails_typed() {
    let (backend, mut bytes) = accelerator_snapshot_bytes();
    bytes[8] = SNAPSHOT_VERSION as u8 + 1;
    match PreparedMatrix::load(backend.as_ref(), bytes.as_slice()) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_precision_tag_fails_typed() {
    // An unknown tag byte is detected even with a valid CRC.
    let (backend, mut bytes) = accelerator_snapshot_bytes();
    bytes[11] = 99;
    reseal(&mut bytes);
    assert!(matches!(
        PreparedMatrix::load(backend.as_ref(), bytes.as_slice()),
        Err(SnapshotError::UnknownPrecision { tag: 99 })
    ));
    // A known-but-wrong tag contradicts the layout's value width.
    let (backend, mut bytes) = accelerator_snapshot_bytes();
    bytes[11] = 3; // Fixed32 in a 20-bit stream
    reseal(&mut bytes);
    assert!(matches!(
        PreparedMatrix::load(backend.as_ref(), bytes.as_slice()),
        Err(SnapshotError::Invalid { .. })
    ));
    // And a backend of another precision is refused by family before the
    // payload is even adopted (the family string carries the precision).
    let (_, bytes) = accelerator_snapshot_bytes();
    let b32: Arc<dyn TopKBackend> = Arc::new(
        Accelerator::builder()
            .precision(tkspmv_fixed::Precision::Fixed32)
            .cores(4)
            .k(8)
            .build()
            .expect("32-bit design builds"),
    );
    assert!(matches!(
        PreparedMatrix::load(b32.as_ref(), bytes.as_slice()),
        Err(SnapshotError::FamilyMismatch { .. })
    ));
}

/// The deterministic collection the companion-section tests share, and
/// a CPU backend pair: the plain engine and the staged pipeline wrapped
/// around it (both write the same `cpu` header + CSR payload bytes —
/// the staged one just appends a companion section).
fn cpu_pair() -> (Arc<dyn TopKBackend>, PrunedBackend, Csr) {
    let cpu: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
    let staged =
        PrunedBackend::new(Arc::clone(&cpu), PruneBits::Eight, 4).expect("factor 4 is valid");
    let csr = tkspmv_sparse::gen::SyntheticConfig {
        num_rows: 200,
        num_cols: 128,
        avg_nnz_per_row: 10,
        distribution: tkspmv_sparse::gen::NnzDistribution::Uniform,
        seed: 7,
    }
    .generate();
    (cpu, staged, csr)
}

#[test]
fn v1_snapshots_load_with_pruning_unavailable() {
    // A version-1 stream is the v2 layout minus the companion tag byte
    // (v1 predates companions), so back-dating a companion-free v2
    // snapshot by surgery produces a faithful v1 stream.
    let (cpu, staged, csr) = cpu_pair();
    let prepared = cpu.prepare(&csr).expect("prepare");
    let mut bytes = save_to_vec(cpu.as_ref(), &prepared);
    bytes[8] = 1;
    bytes[9] = 0;
    let tag_at = bytes.len() - 5;
    assert_eq!(bytes[tag_at], 0, "companion tag byte should read `none`");
    bytes.remove(tag_at);
    reseal(&mut bytes);

    // The plain engine loads it as before the format bump…
    let x = tkspmv_sparse::gen::query_vector(128, 3);
    let plain = PreparedMatrix::load(cpu.as_ref(), bytes.as_slice()).expect("v1 loads on cpu");
    let exact = cpu.query(&plain, &x, 10).expect("cpu query");

    // …and the staged pipeline loads it too — with the prune companion
    // unavailable, so queries observably fall through to the exact path
    // instead of failing.
    let loaded =
        PreparedMatrix::load(&staged, bytes.as_slice()).expect("v1 loads on the staged pipeline");
    let got = staged.query(&loaded, &x, 10).expect("staged query");
    assert_eq!(got.topk, exact.topk);
    assert!(
        matches!(got.stats, BackendStats::Pruned { pruned: false, .. }),
        "a pre-companion snapshot must fall through to exact, got {:?}",
        got.stats
    );
}

#[test]
fn companion_section_version_skew_fails_typed() {
    let (cpu, staged, csr) = cpu_pair();
    // Both backends serialize identical bytes up to the companion tag,
    // so the companion-free stream length locates the tag byte and the
    // section version field inside the companion-bearing stream.
    let len_none = save_to_vec(cpu.as_ref(), &cpu.prepare(&csr).expect("prepare")).len();
    let sp = staged.prepare(&csr).expect("staged prepare");
    let mut bytes = save_to_vec(&staged, &sp);
    assert!(
        bytes.len() > len_none,
        "companion section should be present"
    );
    assert_eq!(
        bytes[len_none - 5],
        1,
        "companion tag byte should read `prune`"
    );
    bytes[len_none - 4..len_none - 2].copy_from_slice(&0x7Fu16.to_le_bytes());
    reseal(&mut bytes);
    match PreparedMatrix::load(&staged, bytes.as_slice()) {
        Err(SnapshotError::UnsupportedCompanionVersion { found, supported }) => {
            assert_eq!(found, 0x7F);
            assert_eq!(supported, PRUNE_SECTION_VERSION);
        }
        other => panic!("expected UnsupportedCompanionVersion, got {other:?}"),
    }
}

#[test]
fn not_a_snapshot_fails_typed() {
    let (backend, _) = accelerator_snapshot_bytes();
    assert!(matches!(
        PreparedMatrix::load(backend.as_ref(), &b"%%MatrixMarket matrix"[..]),
        Err(SnapshotError::BadMagic { .. })
    ));
}

/// A random matrix, a few query vectors, and a coverable `k`.
fn arb_case() -> impl Strategy<Value = (Csr, Vec<DenseVector>, usize)> {
    (24usize..60, 8usize..48, 1usize..9).prop_flat_map(|(rows, cols, k)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..150)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 13 % 89) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let queries = proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, cols..=cols).prop_map(DenseVector::from_values),
            1..5,
        );
        (matrix, queries, Just(k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn save_load_answers_equal_fresh_prepare_for_every_backend(
        (csr, queries, k) in arb_case()
    ) {
        let k = k.min(csr.num_rows());
        for backend in all_backends() {
            let fresh = backend.prepare(&csr).expect("prepare");
            let bytes = save_to_vec(backend.as_ref(), &fresh);
            let loaded = PreparedMatrix::load(backend.as_ref(), bytes.as_slice())
                .expect("snapshot loads");
            prop_assert_eq!(loaded.family(), fresh.family());
            prop_assert_eq!(loaded.num_rows(), fresh.num_rows());
            prop_assert_eq!(loaded.num_cols(), fresh.num_cols());
            prop_assert_eq!(loaded.nnz(), fresh.nnz());
            for x in &queries {
                let a = backend.query(&fresh, x, k).expect("fresh query");
                let b = backend.query(&loaded, x, k).expect("loaded query");
                prop_assert_eq!(
                    &a.topk, &b.topk,
                    "{}: loaded snapshot diverged from fresh prepare", backend.name()
                );
            }
        }
    }
}
