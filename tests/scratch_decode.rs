//! Property tests for the allocation-free packet decode path:
//! `PacketView::parse_into` must be observationally identical to the
//! allocating `PacketView::parse` on any valid packet stream, and a
//! reused scratch must never leak state from a previously parsed packet.

use proptest::prelude::*;
use tkspmv::{quantize_vector, run_core_batch_with_scratch, BatchScratch, Fidelity};
use tkspmv_fixed::{Q1_19, Q1_31};
use tkspmv_sparse::gen::query_vector;
use tkspmv_sparse::{BitReader, BsCsr, Csr, PacketLayout, PacketScratch, PacketView};

/// Strategy: a random sparse matrix as sorted unique triplets with
/// values in the unsigned datapath domain (0, 1].
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (1usize..40, 1usize..200).prop_flat_map(|(rows, cols)| {
        proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 0..200).prop_map(
            move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i % 997) + 1) as f32 / 1000.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid by construction")
            },
        )
    })
}

/// The fields `parse_into` fills, lifted out of the scratch for
/// comparison against a `PacketView`.
fn scratch_fields(s: &PacketScratch) -> (bool, Vec<u32>, Vec<u32>, Vec<u64>) {
    (s.new_row, s.row_ends.clone(), s.idx.clone(), s.val.clone())
}

fn view_fields(v: &PacketView) -> (bool, Vec<u32>, Vec<u32>, Vec<u64>) {
    (v.new_row, v.row_ends.clone(), v.idx.clone(), v.val.clone())
}

/// Independent reference decoder: a sequential `BitReader` walk over
/// every field, including the padding fields the production decoder
/// skips. `PacketView::parse` delegates to `parse_into`, so this — not
/// `parse` — is the oracle that keeps the equivalence test from being
/// circular.
fn bitreader_oracle(bs: &BsCsr, p: usize) -> (bool, Vec<u32>, Vec<u32>, Vec<u64>) {
    let layout = bs.layout();
    let b = layout.entries_per_packet() as usize;
    let real = bs.entries_in_packet(p);
    let mut r = BitReader::new(&bs.packets()[p]);
    let new_row = r.read(1) == 1;
    let mut row_ends = Vec::new();
    for _ in 0..b {
        let v = r.read(layout.ptr_bits()) as u32;
        if v != 0 {
            row_ends.push(v);
        }
    }
    let mut idx = Vec::new();
    for j in 0..b {
        let v = r.read(layout.idx_bits()) as u32;
        if j < real {
            idx.push(v);
        }
    }
    let mut val = Vec::new();
    for j in 0..b {
        let v = r.read(layout.value_bits());
        if j < real {
            val.push(v);
        }
    }
    (new_row, row_ends, idx, val)
}

/// Pollutes a scratch so any field `parse_into` fails to overwrite shows
/// up as a mismatch (stale lengths, stale values, stale `new_row`).
fn pollute(s: &mut PacketScratch) {
    s.new_row = !s.new_row;
    s.row_ends.extend([u32::MAX, 7, 7, 0]);
    s.idx.extend([u32::MAX; 40]);
    s.val.extend([u64::MAX; 40]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parse_into_matches_parse_for_any_packet_stream(csr in arb_matrix()) {
        for value_bits in [20u32, 32] {
            let layout = PacketLayout::solve(csr.num_cols(), value_bits).unwrap();
            let bs = if value_bits == 20 {
                BsCsr::encode::<Q1_19>(&csr, layout)
            } else {
                BsCsr::encode::<Q1_31>(&csr, layout)
            };
            // One scratch reused across the whole stream, in order.
            let mut scratch = PacketScratch::new();
            for p in 0..bs.num_packets() {
                let oracle = bitreader_oracle(&bs, p);
                let view = bs.view(p);
                bs.view_into(p, &mut scratch);
                prop_assert_eq!(
                    scratch_fields(&scratch),
                    oracle.clone(),
                    "scratch decode vs BitReader oracle, packet {} of {} (V={})",
                    p, bs.num_packets(), value_bits
                );
                prop_assert_eq!(
                    view_fields(&view),
                    oracle,
                    "allocating parse vs BitReader oracle, packet {} of {} (V={})",
                    p, bs.num_packets(), value_bits
                );
                prop_assert_eq!(scratch.len(), view.len());
                prop_assert_eq!(scratch.is_empty(), view.is_empty());
                prop_assert_eq!(scratch.tail_len(), view.tail_len());
            }
        }
    }

    #[test]
    fn scratch_reuse_never_leaks_previous_packet_state(csr in arb_matrix()) {
        let layout = PacketLayout::solve(csr.num_cols(), 20).unwrap();
        let bs = BsCsr::encode::<Q1_19>(&csr, layout);
        // Parse the stream backwards with a scratch polluted before every
        // packet: each parse must fully overwrite whatever was there.
        let mut scratch = PacketScratch::new();
        for p in (0..bs.num_packets()).rev() {
            pollute(&mut scratch);
            bs.view_into(p, &mut scratch);
            prop_assert_eq!(
                scratch_fields(&scratch),
                view_fields(&bs.view(p)),
                "packet {} parsed into a dirty scratch", p
            );
        }
        // And parsing the same packet twice is idempotent.
        if bs.num_packets() > 0 {
            bs.view_into(0, &mut scratch);
            let first = scratch_fields(&scratch);
            bs.view_into(0, &mut scratch);
            prop_assert_eq!(scratch_fields(&scratch), first);
        }
    }

    /// A long-lived [`BatchScratch`] streamed through batches of
    /// wildly varying size (growing, shrinking, B = 1) and different
    /// matrices must behave exactly like a fresh scratch every time:
    /// stale lanes from a larger previous batch, stale segment programs
    /// and stale decoded values must never reach a later result.
    #[test]
    fn batch_scratch_reuse_never_leaks_across_batch_sizes(
        csr_a in arb_matrix(),
        csr_b in arb_matrix(),
        sizes in proptest::collection::vec(1usize..9, 2..6),
    ) {
        let enc = |csr: &Csr| {
            let layout = PacketLayout::solve(csr.num_cols(), 20).unwrap();
            BsCsr::encode::<Q1_19>(csr, layout)
        };
        let bs = [enc(&csr_a), enc(&csr_b)];
        let cols = [csr_a.num_cols(), csr_b.num_cols()];
        let k = 4;

        let mut reused = BatchScratch::<Q1_19>::new();
        for (round, &b) in sizes.iter().enumerate() {
            // Alternate matrices so a stale carry/segment program from
            // one stream would corrupt the next.
            let m = round % 2;
            let queries: Vec<Vec<Q1_19>> = (0..b)
                .map(|q| {
                    quantize_vector::<Q1_19>(
                        query_vector(cols[m], (round * 17 + q) as u64).as_slice(),
                    )
                })
                .collect();
            let got: Vec<_> = run_core_batch_with_scratch(
                &bs[m],
                &queries,
                k,
                Fidelity::Faithful { rows_per_packet: 2 },
                &mut reused,
            )
            .to_vec();
            let mut fresh = BatchScratch::<Q1_19>::new();
            let expected = run_core_batch_with_scratch(
                &bs[m],
                &queries,
                k,
                Fidelity::Faithful { rows_per_packet: 2 },
                &mut fresh,
            );
            prop_assert_eq!(got.len(), expected.len());
            for (lane, (g, e)) in got.iter().zip(expected).enumerate() {
                prop_assert_eq!(
                    &g.topk, &e.topk,
                    "round {} (B={}) lane {}: reused scratch diverged", round, b, lane
                );
                prop_assert_eq!(g.stats, e.stats);
            }
        }
    }
}
