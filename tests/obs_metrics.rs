//! End-to-end tests of the Prometheus exposition surface: the node's
//! `/metrics` endpoint, the router's `/metrics` + `/traces` endpoints,
//! and the service-level renderer they both delegate to. Every scrape
//! is validated with [`tkspmv_obs::validate_exposition`] — the same
//! syntax check CI runs against a live cluster.

use std::sync::Arc;
use std::time::Duration;

use tkspmv::backend::{QueryTier, TopKBackend};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_fabric::{
    DeltaCollection, NodeClient, NodeServer, PartialPolicy, Router, RouterConfig, ShardSpec,
};
use tkspmv_obs::{http_get, validate_exposition};
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

const DIM: usize = 64;
const DEADLINE: Duration = Duration::from_secs(10);

fn collection(rows: usize, seed: u64) -> Csr {
    SyntheticConfig {
        num_rows: rows,
        num_cols: DIM,
        avg_nnz_per_row: 6,
        distribution: NnzDistribution::Uniform,
        seed,
    }
    .generate()
}

fn node_with_metrics(rows: usize, start_row: usize) -> NodeServer {
    let csr = collection(rows, 42 + start_row as u64);
    let backend: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(1));
    let service = TopKService::builder(backend)
        .batch_policy(BatchPolicy::immediate())
        .build(&csr)
        .expect("service builds");
    let delta = Arc::new(DeltaCollection::new(service, csr, start_row));
    NodeServer::spawn_with_metrics(delta, "127.0.0.1:0", "127.0.0.1:0").expect("node binds")
}

#[test]
fn node_metrics_endpoint_serves_valid_exposition_with_core_series() {
    let node = node_with_metrics(40, 0);
    let metrics_addr = node.metrics_addr().expect("metrics endpoint bound");

    let mut client = NodeClient::connect(node.local_addr(), DEADLINE).expect("connect");
    for seed in 0..5 {
        let x = query_vector(DIM, seed);
        client
            .query(x.as_slice(), 4, QueryTier::Exact, DEADLINE)
            .expect("query");
    }

    let body = http_get(metrics_addr, "/metrics", DEADLINE).expect("scrape");
    let names = validate_exposition(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    for required in [
        "tkspmv_serve_requests_total",
        "tkspmv_serve_batches_total",
        "tkspmv_serve_latency_seconds",
        "tkspmv_serve_stage_seconds",
        "tkspmv_serve_epoch",
    ] {
        // Histograms expose `<name>_bucket/_sum/_count` series.
        assert!(
            names.iter().any(|n| n.starts_with(required)),
            "scrape is missing {required}; got {names:?}"
        );
    }
    // The five queries above must be visible in the served counter.
    let served = body
        .lines()
        .find(|l| l.starts_with("tkspmv_serve_requests_total{outcome=\"served\"}"))
        .expect("served counter rendered");
    let value: f64 = served.rsplit(' ').next().unwrap().parse().expect("number");
    assert!(value >= 5.0, "served counter {value} below the 5 queries");

    // Unknown paths 404 (the endpoint serves exactly /metrics).
    assert!(http_get(metrics_addr, "/nope", DEADLINE).is_err());
    node.shutdown();
}

#[test]
fn router_endpoints_serve_valid_exposition_and_trace_json() {
    let nodes = [node_with_metrics(30, 0), node_with_metrics(30, 30)];
    let specs = nodes
        .iter()
        .map(|n| ShardSpec::single(n.local_addr().to_string()))
        .collect();
    let router = Router::connect(
        specs,
        RouterConfig {
            deadline: DEADLINE,
            trace: true,
            ..RouterConfig::default()
        },
    )
    .expect("router connects");
    let endpoint = router.serve_metrics("127.0.0.1:0").expect("endpoint binds");

    for seed in 0..4 {
        let x = query_vector(DIM, 100 + seed);
        router
            .query(x.as_slice(), 4, QueryTier::Exact)
            .expect("routed query");
    }

    let body = http_get(endpoint.addr(), "/metrics", DEADLINE).expect("scrape");
    let names = validate_exposition(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    for required in [
        "tkspmv_router_requests_total",
        "tkspmv_router_hedged_sends_total",
        "tkspmv_router_failovers_total",
        "tkspmv_router_deadline_expiries_total",
        "tkspmv_router_incomplete_coverage_total",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "router scrape is missing {required}; got {names:?}"
        );
    }
    assert!(
        body.contains("tkspmv_router_requests_total 4"),
        "request counter should read 4:\n{body}"
    );

    let traces = http_get(endpoint.addr(), "/traces", DEADLINE).expect("traces");
    assert!(traces.starts_with('[') && traces.ends_with(']'), "{traces}");
    assert!(
        traces.contains("\"trace_id\":\"") && traces.contains("\"name\":\"router\""),
        "trace dump missing assembled trees: {traces}"
    );

    drop(endpoint);
    for node in nodes {
        node.shutdown();
    }
}

/// S2: a dead primary replica must be visible as a failover, and a
/// fully dead shard group as incomplete coverage — both on the router's
/// degradation counters.
#[test]
fn router_degradation_counters_count_failover_and_incomplete_coverage() {
    // A port that refuses connections: bind, note the address, drop.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        addr.to_string()
    };

    let live = node_with_metrics(30, 0);
    let second = node_with_metrics(30, 30);
    let router = Router::connect(
        vec![
            // Dead primary, live fallback: every query fails over.
            ShardSpec::replicated([dead.clone(), live.local_addr().to_string()]),
            ShardSpec::single(second.local_addr().to_string()),
        ],
        RouterConfig {
            deadline: DEADLINE,
            partial: PartialPolicy::Allow,
            ..RouterConfig::default()
        },
    )
    .expect("router connects through the fallback");

    let x = query_vector(DIM, 9);
    let result = router
        .query(x.as_slice(), 4, QueryTier::Exact)
        .expect("query");
    assert!(result.coverage.is_complete(), "fallback replica answered");

    let counter = |name: &str| -> f64 {
        let rendered = router.render_metrics();
        rendered
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} not rendered:\n{rendered}"))
    };
    assert!(counter("tkspmv_router_failovers_total") >= 1.0);
    assert_eq!(counter("tkspmv_router_incomplete_coverage_total"), 0.0);

    // Kill the second group entirely: coverage goes incomplete.
    second.shutdown();
    let partial = router
        .query(x.as_slice(), 4, QueryTier::Exact)
        .expect("partial result allowed");
    assert!(!partial.coverage.is_complete());
    assert!(counter("tkspmv_router_incomplete_coverage_total") >= 1.0);

    live.shutdown();
}

#[test]
fn service_renderer_matches_endpoint_and_stays_valid() {
    let csr = collection(25, 3);
    let backend: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(1));
    let service = TopKService::builder(backend)
        .batch_policy(BatchPolicy::immediate())
        .build(&csr)
        .expect("service builds");
    for seed in 0..3 {
        service.query(query_vector(DIM, seed), 4).expect("query");
    }
    let rendered = service.render_metrics();
    validate_exposition(&rendered).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    assert!(rendered.contains("tkspmv_serve_requests_total{outcome=\"served\"} 3"));
    service.shutdown();
}
