//! Invariants of the performance model: linearity, channel scaling, and
//! the paper's headline claims.

use tkspmv::Accelerator;
use tkspmv_fixed::Precision;
use tkspmv_hw::{DesignPoint, HbmConfig, ResourceModel, Roofline};
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::{Csr, PacketLayout};

fn matrix(rows: usize) -> Csr {
    SyntheticConfig {
        num_rows: rows,
        num_cols: 1024,
        avg_nnz_per_row: 20,
        distribution: NnzDistribution::Uniform,
        seed: 9,
    }
    .generate()
}

fn kernel_seconds(csr: &Csr, precision: Precision, cores: u32) -> f64 {
    let acc = Accelerator::builder()
        .precision(precision)
        .cores(cores)
        .k(8)
        .build()
        .unwrap();
    let m = acc.load_matrix(csr).unwrap();
    let x = query_vector(csr.num_cols(), 1);
    acc.query(&m, &x, 8).unwrap().perf.kernel_seconds
}

#[test]
fn kernel_time_linear_in_matrix_size() {
    let t1 = kernel_seconds(&matrix(2_000), Precision::Fixed20, 32);
    let t4 = kernel_seconds(&matrix(8_000), Precision::Fixed20, 32);
    let ratio = t4 / t1;
    assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn kernel_time_scales_inverse_with_cores() {
    // Figure 6a: performance scales linearly with channels.
    let csr = matrix(16_000);
    let t8 = kernel_seconds(&csr, Precision::Fixed20, 8);
    let t32 = kernel_seconds(&csr, Precision::Fixed20, 32);
    let speedup = t8 / t32;
    assert!(
        (3.0..5.0).contains(&speedup),
        "8 -> 32 cores speedup {speedup}"
    );
}

#[test]
fn reduced_precision_is_faster_by_packing_ratio() {
    // 20-bit packs B = 15 vs 32-bit's B = 11: kernel time ratio ~15/11.
    let csr = matrix(16_000);
    let t20 = kernel_seconds(&csr, Precision::Fixed20, 32);
    let t32 = kernel_seconds(&csr, Precision::Fixed32, 32);
    let ratio = t32 / t20;
    assert!((1.2..1.55).contains(&ratio), "packing speedup {ratio}");
}

#[test]
fn paper_headline_4ms_for_200m_nnz() {
    // §V-A: 10^7 rows, 2*10^8 nnz in < 4 ms. Model it directly from the
    // channel model (generating 2*10^8 nnz in a unit test is excessive).
    let hbm = HbmConfig::alveo_u280();
    let model = ResourceModel::alveo_u280();
    let design = DesignPoint::paper_design(Precision::Fixed20);
    let channel = hbm.channel_model(model.clock_hz(&design));
    let layout = PacketLayout::solve(1024, 20).unwrap();
    let packets_per_core = layout.packets_for(200_000_000).div_ceil(32);
    let seconds = channel.stream_seconds(packets_per_core);
    assert!(seconds < 0.004, "modelled {seconds} s");
    // And the throughput crosses the paper's 57 GNNZ/s within 2x.
    let gnnz = 200.0e6 / seconds / 1e9;
    assert!(gnnz > 50.0, "throughput {gnnz} GNNZ/s");
}

#[test]
fn fpga_beats_idealised_gpu_by_about_2x() {
    // The headline Figure 5 claim in model form: FPGA 20b attainable
    // (99 GNNZ/s) vs GPU F32 SpMV-only on the same matrix.
    let layout = PacketLayout::solve(1024, 20).unwrap();
    let fpga = Roofline::new(
        HbmConfig::alveo_u280().effective_bandwidth(32),
        layout.operational_intensity(),
    )
    .attainable_nnz_per_sec();
    // GPU: 549 GB/s peak, 8 bytes per nnz traffic, 45% efficiency.
    let gpu = 549.0e9 * 0.45 / 8.0;
    let ratio = fpga / gpu;
    assert!(
        (1.5..4.0).contains(&ratio),
        "FPGA/GPU ratio {ratio:.2} (paper: ~2x)"
    );
}

#[test]
fn achieved_bandwidth_tops_out_at_hbm_effective() {
    let csr = matrix(32_000);
    let acc = Accelerator::builder().cores(32).k(8).build().unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let x = query_vector(1024, 3);
    let perf = acc.query(&m, &x, 8).unwrap().perf;
    let bw = perf.achieved_bandwidth();
    let cap = HbmConfig::alveo_u280().effective_bandwidth(32);
    assert!(bw <= cap * 1.01, "achieved {bw} vs cap {cap}");
    assert!(bw > cap * 0.5, "achieved {bw} should be near cap {cap}");
}

#[test]
fn power_efficiency_vs_gpu_matches_paper_order() {
    // §V-B: 14.2x higher performance/watt than the idealised GPU.
    let model = ResourceModel::alveo_u280();
    let design = DesignPoint::paper_design(Precision::Fixed20);
    let layout = PacketLayout::solve(1024, 20).unwrap();
    let fpga_perf = Roofline::new(
        HbmConfig::alveo_u280().effective_bandwidth(32),
        layout.operational_intensity(),
    )
    .attainable_nnz_per_sec();
    let fpga_ppw = fpga_perf / model.power_w(&design);
    let gpu_perf = 549.0e9 * 0.45 / 8.0;
    let gpu_ppw = gpu_perf / 250.0; // paper: GPU draws 250 W
    let ratio = fpga_ppw / gpu_ppw;
    assert!(
        (8.0..25.0).contains(&ratio),
        "perf/W ratio {ratio:.1} (paper: 14.2x)"
    );
}
