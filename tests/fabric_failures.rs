//! Failure injection for the distributed fabric: nodes killed mid-query
//! and before queries, compactors killed mid-compaction, and the
//! deadline budget contract between the router and the node batcher.
//!
//! The invariants under test:
//!
//! - A router query never blocks past its deadline (plus bounded
//!   connect slack), however a node dies — wedged, refused, or gone.
//! - Lost shards surface as typed coverage, not silent truncation:
//!   [`PartialPolicy::Fail`] turns them into errors carrying the
//!   report, [`PartialPolicy::Allow`] returns the partial merge with
//!   the gaps named.
//! - A replica set hides a dead primary entirely.
//! - A compactor dying mid-compaction leaves the serving epoch and the
//!   delta intact; the next run folds the same rows.
//! - The router refuses deadlines that cannot clear a node's batcher
//!   `max_wait` (the idle-traffic tax), and a lone query on a healthy
//!   fleet completes in one `max_wait` — budgets nest, they don't stack.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tkspmv::backend::QueryTier;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_fabric::wire::{read_request, write_response, NodeInfo, Request, Response};
use tkspmv_fabric::{
    DeltaCollection, FabricError, NodeClient, NodeServer, PartialPolicy, Router, RouterConfig,
    ShardFailure, ShardOutcome, ShardSpec,
};
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::Csr;

const DEADLINE: Duration = Duration::from_secs(10);

fn diag_csr(rows: usize, dim: usize) -> Csr {
    let row_ptr = (0..=rows as u64).collect();
    let col_idx = (0..rows as u32).map(|r| r % dim as u32).collect();
    let values = (0..rows).map(|r| 1.0 + r as f32).collect();
    Csr::from_parts(rows, dim, row_ptr, col_idx, values).expect("valid csr")
}

fn spawn_node(rows: usize, dim: usize, start_row: usize, policy: BatchPolicy) -> NodeServer {
    let csr = diag_csr(rows, dim);
    let service = TopKService::builder(Arc::new(CpuTopK::new(1)))
        .batch_policy(policy)
        .build(&csr)
        .expect("service");
    let collection = Arc::new(DeltaCollection::new(service, csr, start_row));
    NodeServer::spawn(collection, "127.0.0.1:0").expect("bind")
}

fn router_config(deadline: Duration) -> RouterConfig {
    RouterConfig {
        deadline,
        connect_timeout: Duration::from_millis(500),
        headroom: Duration::from_millis(20),
        ..RouterConfig::default()
    }
}

/// A node that answers `Info` honestly, then goes silent forever on the
/// first query — the shape of a process wedged mid-request.
fn spawn_wedged_shard(start_row: u64, rows: u64, dim: u64) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || loop {
                match read_request(&mut stream) {
                    Ok(Request::Info) => {
                        let info = NodeInfo {
                            start_row,
                            base_rows: rows,
                            delta_rows: 0,
                            dim,
                            epoch: 0,
                            max_wait_micros: 0,
                            max_batch_size: 1,
                            queue_capacity: 1024,
                        };
                        if write_response(&mut stream, &Response::Info(info)).is_err() {
                            return;
                        }
                    }
                    Ok(_) => {
                        // Wedge: never answer, never close.
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                    Err(_) => return,
                }
            });
        }
    });
    addr
}

#[test]
fn wedged_node_times_out_within_the_deadline() {
    let live = spawn_node(8, 8, 0, BatchPolicy::immediate());
    let wedged = spawn_wedged_shard(8, 8, 8);
    let deadline = Duration::from_millis(600);
    let router = Router::connect(
        vec![
            ShardSpec::single(live.local_addr().to_string()),
            ShardSpec::single(wedged.to_string()),
        ],
        RouterConfig {
            partial: PartialPolicy::Fail,
            ..router_config(deadline)
        },
    )
    .expect("connect");

    let start = Instant::now();
    let err = router
        .query(&[1.0f32; 8], 3, QueryTier::Exact)
        .expect_err("wedged shard must fail the query under Fail policy");
    let elapsed = start.elapsed();
    assert!(
        elapsed < deadline + Duration::from_secs(2),
        "router blocked {elapsed:?} — past the deadline plus connect slack"
    );
    match err {
        FabricError::Partial { coverage } => {
            assert_eq!(coverage.answered(), 1);
            let failures = coverage.failures();
            assert_eq!(failures.len(), 1);
            assert!(
                matches!(failures[0].1, ShardFailure::DeadlineExceeded),
                "expected a deadline failure, got {:?}",
                failures[0].1
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    live.shutdown();
}

#[test]
fn dead_node_degrades_to_typed_partial_coverage() {
    let dim = 8;
    let a = spawn_node(8, dim, 0, BatchPolicy::immediate());
    let b = spawn_node(8, dim, 8, BatchPolicy::immediate());
    let b_addr = b.local_addr().to_string();
    let specs = vec![
        ShardSpec::single(a.local_addr().to_string()),
        ShardSpec::single(b_addr),
    ];

    // Connect while both are alive, then kill node B outright.
    let allow = Router::connect(
        specs.clone(),
        RouterConfig {
            partial: PartialPolicy::Allow,
            ..router_config(Duration::from_secs(2))
        },
    )
    .expect("connect");
    let fail = Router::connect(
        specs,
        RouterConfig {
            partial: PartialPolicy::Fail,
            ..router_config(Duration::from_secs(2))
        },
    )
    .expect("connect");
    b.shutdown();

    // Allow: the surviving shard's answer comes back, the gap is named.
    let mut x = vec![0.0f32; dim];
    x[2] = 1.0;
    let result = allow
        .query(&x, 2, QueryTier::Exact)
        .expect("partial answers allowed");
    assert!(!result.coverage.is_complete());
    assert_eq!(result.coverage.answered(), 1);
    assert_eq!(result.coverage.shards(), 2);
    // Shard A's row 2 survives; nothing from B's range appears.
    assert!(result.topk.entries().iter().all(|&(row, _)| row < 8));
    assert_eq!(result.topk.entries()[0], (2, 3.0));

    // Fail: the same situation is an error carrying the same report.
    let err = fail
        .query(&x, 2, QueryTier::Exact)
        .expect_err("partial coverage must fail under Fail policy");
    match err {
        FabricError::Partial { coverage } => {
            assert_eq!(coverage.answered(), 1);
            assert!(matches!(
                coverage.failures()[0].1,
                ShardFailure::Unreachable { .. } | ShardFailure::DeadlineExceeded
            ));
        }
        other => panic!("unexpected {other:?}"),
    }
    a.shutdown();
}

#[test]
fn every_shard_dead_is_no_coverage() {
    let a = spawn_node(4, 4, 0, BatchPolicy::immediate());
    let router = Router::connect(
        vec![ShardSpec::single(a.local_addr().to_string())],
        RouterConfig {
            partial: PartialPolicy::Allow,
            ..router_config(Duration::from_secs(1))
        },
    )
    .expect("connect");
    a.shutdown();
    match router.query(&[1.0f32; 4], 1, QueryTier::Exact) {
        Err(FabricError::NoCoverage { coverage }) => {
            assert_eq!(coverage.answered(), 0);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn replica_failover_hides_a_dead_primary() {
    let dim = 6;
    // Reserve a port that will refuse connections once released.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let live = spawn_node(6, dim, 0, BatchPolicy::immediate());
    let router = Router::connect(
        vec![ShardSpec::replicated([
            dead_addr,
            live.local_addr().to_string(),
        ])],
        router_config(Duration::from_secs(5)),
    )
    .expect("connect must fall back to the live replica");

    let mut x = vec![0.0f32; dim];
    x[3] = 1.0;
    let result = router.query(&x, 1, QueryTier::Exact).expect("failover");
    assert!(result.coverage.is_complete());
    assert_eq!(
        result.coverage.outcomes()[0],
        ShardOutcome::Answered { replica: 1 },
        "the live secondary must have answered"
    );
    assert_eq!(result.topk.entries()[0], (3, 4.0));
    live.shutdown();
}

#[test]
fn compactor_killed_mid_compaction_recovers_without_disturbing_serving() {
    let csr = diag_csr(4, 4);
    let service = TopKService::builder(Arc::new(CpuTopK::new(1)))
        .build(&csr)
        .expect("service");
    let collection = Arc::new(DeltaCollection::new(service, csr, 0));
    let node = NodeServer::spawn(Arc::clone(&collection), "127.0.0.1:0").expect("bind");
    let mut client = NodeClient::connect(node.local_addr(), DEADLINE).expect("connect");

    let ids = client
        .append(&[(vec![1], vec![9.0])], DEADLINE)
        .expect("append");
    assert_eq!(ids, vec![4]);
    let epoch_before = collection.service().epoch();

    // Kill the compactor after the fold, before the swap.
    let victim = Arc::clone(&collection);
    let death = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        victim.compact_once_hooked(|| panic!("compactor killed"))
    }));
    assert!(death.is_err(), "the injected panic must propagate");

    // Serving epoch untouched, the delta row still answers via the wire.
    assert_eq!(collection.service().epoch(), epoch_before);
    let mut x = vec![0.0f32; 4];
    x[1] = 1.0;
    let entries = client
        .query(&x, 1, QueryTier::Exact, DEADLINE)
        .expect("query while un-compacted");
    assert_eq!(entries[0], (4, 9.0));

    // The next run folds the same rows; the answer is bit-identical.
    let (epoch, folded) = client.compact(DEADLINE).expect("recovery compaction");
    assert!(epoch > epoch_before);
    assert_eq!(folded, 1);
    let entries = client
        .query(&x, 1, QueryTier::Exact, DEADLINE)
        .expect("query after recovery");
    assert_eq!(entries[0], (4, 9.0));
    node.shutdown();
}

#[test]
fn router_rejects_deadlines_the_node_batcher_would_eat() {
    // The node batches lone queries for up to max_wait before running
    // them — a router deadline inside that window would time out every
    // idle-cluster query. The router must refuse the configuration with
    // a typed error that names the contract.
    let max_wait = Duration::from_millis(100);
    let node = spawn_node(8, 8, 0, BatchPolicy::coalescing(16, max_wait));
    let err = Router::connect(
        vec![ShardSpec::single(node.local_addr().to_string())],
        RouterConfig {
            deadline: Duration::from_millis(60),
            headroom: Duration::from_millis(20),
            ..router_config(Duration::from_millis(60))
        },
    )
    .expect_err("a deadline under max_wait + headroom must be refused");
    match err {
        FabricError::InvalidConfig { detail } => {
            assert!(detail.contains("max_wait"), "{detail}");
            assert!(detail.contains("headroom"), "{detail}");
        }
        other => panic!("unexpected {other:?}"),
    }
    node.shutdown();
}

#[test]
fn lone_query_pays_max_wait_once_not_deadline_plus_max_wait() {
    // The budget split: router deadline > node max_wait + headroom.
    // A lone query on an idle cluster costs ~max_wait (the node batcher
    // flushing) — the router deadline bounds it, it does not stack on
    // top of it.
    let max_wait = Duration::from_millis(150);
    let deadline = Duration::from_millis(2_000);
    let node = spawn_node(8, 8, 0, BatchPolicy::coalescing(16, max_wait));
    let router = Router::connect(
        vec![ShardSpec::single(node.local_addr().to_string())],
        RouterConfig {
            headroom: Duration::from_millis(100),
            ..router_config(deadline)
        },
    )
    .expect("a cleared budget connects");

    let start = Instant::now();
    let result = router
        .query(&[1.0f32; 8], 1, QueryTier::Exact)
        .expect("idle lone query");
    let elapsed = start.elapsed();
    assert!(result.coverage.is_complete());
    assert!(
        elapsed >= max_wait,
        "a lone query cannot beat the batcher's max_wait ({elapsed:?})"
    );
    assert!(
        elapsed < deadline,
        "the idle-traffic tax must stay inside the deadline, not stack \
         ({elapsed:?} vs {deadline:?})"
    );
    node.shutdown();
}
