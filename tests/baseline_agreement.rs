//! All four execution paths — exact oracle, CPU baseline, GPU model,
//! FPGA engine — must agree on what the Top-K *is* (up to arithmetic
//! noise), or no cross-architecture comparison is meaningful.

use tkspmv::Accelerator;
use tkspmv_baselines::cpu::{exact_topk, CpuTopK};
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision};
use tkspmv_fixed::Precision;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::Csr;

fn matrix() -> Csr {
    SyntheticConfig {
        num_rows: 3000,
        num_cols: 256,
        avg_nnz_per_row: 16,
        distribution: NnzDistribution::table3_gamma(),
        seed: 31,
    }
    .generate()
}

#[test]
fn cpu_matches_oracle_exactly() {
    let csr = matrix();
    for q in 0..5u64 {
        let x = query_vector(256, q);
        let oracle = exact_topk(&csr, x.as_slice(), 64);
        let cpu = CpuTopK::with_all_cores().run(&csr, x.as_slice(), 64);
        assert_eq!(cpu.indices(), oracle.indices(), "query {q}");
    }
}

#[test]
fn gpu_f32_matches_oracle_set() {
    let csr = matrix();
    let gpu = GpuModel::tesla_p100();
    for q in 0..5u64 {
        let x = query_vector(256, 50 + q);
        let mut oracle = exact_topk(&csr, x.as_slice(), 64).indices();
        let mut got = gpu
            .run(&csr, x.as_slice(), 64, GpuPrecision::F32)
            .topk
            .indices();
        oracle.sort_unstable();
        got.sort_unstable();
        // f32 vs f64 summation can swap near-equal boundary items; the
        // sets must agree in all but at most one position.
        let misses = got.iter().filter(|i| !oracle.contains(i)).count();
        assert!(misses <= 1, "query {q}: {misses} mismatches");
    }
}

#[test]
fn fpga_f32_single_partition_matches_gpu_f32() {
    // With one partition and k >= K, the FPGA F32 engine computes the
    // same f32 sums as the GPU functional model, in the same order
    // (both accumulate row-major, left to right).
    let csr = matrix();
    let acc = Accelerator::builder()
        .precision(Precision::Float32)
        .cores(1)
        .k(64)
        .build()
        .unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let gpu = GpuModel::tesla_p100();
    for q in 0..3u64 {
        let x = query_vector(256, 80 + q);
        let fpga = acc.query(&m, &x, 64).unwrap().topk;
        let gpu_run = gpu.run(&csr, x.as_slice(), 64, GpuPrecision::F32).topk;
        assert_eq!(fpga.indices(), gpu_run.indices(), "query {q}");
        for (a, b) in fpga.scores().iter().zip(gpu_run.scores()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}

#[test]
fn all_architectures_agree_on_top1() {
    // Whatever the arithmetic, the best match is unambiguous on
    // well-separated data.
    let csr = matrix();
    let x = query_vector(256, 123);
    let oracle_top1 = exact_topk(&csr, x.as_slice(), 1).indices()[0];
    let cpu = CpuTopK::new(4).run(&csr, x.as_slice(), 1).indices()[0];
    let gpu16 = GpuModel::tesla_p100()
        .run(&csr, x.as_slice(), 1, GpuPrecision::F16)
        .topk
        .indices()[0];
    let acc = Accelerator::builder().cores(32).k(8).build().unwrap();
    let m = acc.load_matrix(&csr).unwrap();
    let fpga = acc.query(&m, &x, 1).unwrap().topk.indices()[0];
    assert_eq!(cpu, oracle_top1);
    assert_eq!(fpga, oracle_top1);
    assert_eq!(gpu16, oracle_top1);
}

#[test]
fn timing_sources_are_labelled_consistently() {
    // CPU times are measured; GPU/FPGA times are modelled. Sanity-check
    // the modelled numbers scale with matrix size while measured ones
    // stay positive.
    let small = SyntheticConfig {
        num_rows: 1000,
        num_cols: 256,
        avg_nnz_per_row: 16,
        distribution: NnzDistribution::Uniform,
        seed: 1,
    }
    .generate();
    let big = SyntheticConfig {
        num_rows: 8000,
        num_cols: 256,
        avg_nnz_per_row: 16,
        distribution: NnzDistribution::Uniform,
        seed: 1,
    }
    .generate();
    let x = query_vector(256, 2);

    let gpu = GpuModel::tesla_p100();
    let t_small = gpu.topk_seconds(
        small.nnz() as u64,
        small.num_rows() as u64,
        GpuPrecision::F32,
    );
    let t_big = gpu.topk_seconds(big.nnz() as u64, big.num_rows() as u64, GpuPrecision::F32);
    assert!(t_big > t_small);

    let acc = Accelerator::builder().cores(8).k(8).build().unwrap();
    let pm_small = acc
        .query(&acc.load_matrix(&small).unwrap(), &x, 8)
        .unwrap()
        .perf
        .kernel_seconds;
    let pm_big = acc
        .query(&acc.load_matrix(&big).unwrap(), &x, 8)
        .unwrap()
        .perf
        .kernel_seconds;
    assert!(pm_big > pm_small * 4.0, "roughly linear in nnz");

    let measured = CpuTopK::new(2).run_timed(&small, x.as_slice(), 8).seconds;
    assert!(measured > 0.0);
}
