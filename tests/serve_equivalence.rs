//! Property tests of the serving layer's answer fidelity: for any
//! matrix, shard count, batching policy and submitter concurrency, a
//! query served through `TopKService` must be element-wise identical to
//! direct `TopKBackend` calls.
//!
//! Two reference levels, because exactness differs by engine:
//!
//! 1. **Per-shard reference (every backend, including the approximate
//!    accelerator):** prepare the identical shard layout by hand, query
//!    each shard directly, merge with `TopKResult::merge_pairs`. The
//!    service must reproduce this bit-for-bit — any divergence is a
//!    batching/concurrency/merge bug in the serving layer.
//! 2. **Full-matrix reference (exact backends, and the accelerator at
//!    one shard):** the direct unsharded `query`. For exact engines the
//!    shard merge is lossless under the workspace's total order
//!    (score desc, index asc), so serving at *any* shard count must
//!    equal the unsharded answer. For the accelerator the shard layout
//!    is part of the approximation (as the paper's core partitions are,
//!    §III-A), so full-matrix equality is asserted only at `shards = 1`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tkspmv::backend::{PreparedMatrix, QueryBatch, QueryTier, TopKBackend};
use tkspmv::{Accelerator, PrunedBackend, TopKResult};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision, GpuTopK};
use tkspmv_fixed::PruneBits;
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::{Csr, DenseVector};

/// Exact engines: served answers must match the unsharded direct query
/// at any shard count.
fn exact_backends() -> Vec<Arc<dyn TopKBackend>> {
    vec![
        Arc::new(CpuTopK::new(2)),
        Arc::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F32)),
        Arc::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F16).with_zero_cost_sort()),
    ]
}

/// The approximate accelerator (4 cores, k = 8 per core, so any
/// K ≤ 8 is coverable even by a few-row shard).
fn accelerator() -> Arc<dyn TopKBackend> {
    Arc::new(
        Accelerator::builder()
            .cores(4)
            .k(8)
            .build()
            .expect("small design builds"),
    )
}

/// Direct per-shard reference: same layout, no serving machinery.
fn sharded_reference(
    backend: &dyn TopKBackend,
    csr: &Csr,
    shards: usize,
    x: &DenseVector,
    k: usize,
) -> TopKResult {
    let layout = PreparedMatrix::prepare_row_shards(backend, csr, shards).expect("shards prepare");
    let mut pairs = Vec::new();
    for shard in &layout {
        let out = backend.query(shard.matrix(), x, k).expect("shard query");
        pairs.extend(shard.globalize(&out.topk));
    }
    TopKResult::merge_pairs(pairs, k)
}

/// Direct unsharded reference.
fn direct_reference(backend: &dyn TopKBackend, csr: &Csr, x: &DenseVector, k: usize) -> TopKResult {
    let prepared = backend.prepare(csr).expect("prepare");
    backend.query(&prepared, x, k).expect("query").topk
}

/// Serve every query concurrently (one submitter thread each) and
/// collect the answers in submission order.
fn serve_concurrently(
    backend: Arc<dyn TopKBackend>,
    csr: &Csr,
    shards: usize,
    policy: BatchPolicy,
    queries: &[DenseVector],
    k: usize,
) -> Vec<TopKResult> {
    let service = TopKService::builder(backend)
        .shards(shards)
        .batch_policy(policy)
        .build(csr)
        .expect("service builds");
    let answers = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = queries
            .iter()
            .map(|x| scope.spawn(move || service.query(x.clone(), k).expect("served").topk))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect::<Vec<_>>()
    });
    let metrics = service.shutdown();
    assert_eq!(metrics.served, queries.len() as u64);
    assert_eq!(metrics.failed + metrics.shed, 0);
    answers
}

/// A random matrix (24..60 rows so up to 4 shards stay feasible for the
/// 4-core accelerator), a batch of queries, a coverable K, a shard
/// count, and a batching-policy selector.
fn arb_case() -> impl Strategy<Value = (Csr, Vec<DenseVector>, usize, usize, usize)> {
    (24usize..60, 8usize..48, 1usize..9, 1usize..5, 0usize..3).prop_flat_map(
        |(rows, cols, k, shards, policy)| {
            let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..150)
                .prop_map(move |coords| {
                    let triplets: Vec<(u32, u32, f32)> = coords
                        .into_iter()
                        .enumerate()
                        .map(|(i, (r, c))| (r, c, ((i * 13 % 89) + 1) as f32 / 100.0))
                        .collect();
                    Csr::from_triplets(rows, cols, &triplets).expect("valid")
                });
            let queries = proptest::collection::vec(
                proptest::collection::vec(0.0f32..1.0, cols..=cols)
                    .prop_map(DenseVector::from_values),
                1..7,
            );
            (matrix, queries, Just(k), Just(shards), Just(policy))
        },
    )
}

fn policy_from(selector: usize) -> BatchPolicy {
    match selector {
        0 => BatchPolicy::immediate(),
        1 => BatchPolicy::coalescing(4, Duration::from_micros(300)),
        _ => BatchPolicy::coalescing(16, Duration::from_millis(1)),
    }
}

/// Direct per-shard reference at an explicit tier: same layout, no
/// serving machinery, answered through `query_batch_tiered`.
fn sharded_tiered_reference(
    backend: &dyn TopKBackend,
    csr: &Csr,
    shards: usize,
    x: &DenseVector,
    k: usize,
    tier: QueryTier,
) -> TopKResult {
    let layout = PreparedMatrix::prepare_row_shards(backend, csr, shards).expect("shards prepare");
    let batch = QueryBatch::new(vec![x.clone()]).expect("one-query batch");
    let mut pairs = Vec::new();
    for shard in &layout {
        let out = backend
            .query_batch_tiered(shard.matrix(), &batch, k, tier)
            .expect("shard query");
        pairs.extend(shard.globalize(&out[0].topk));
    }
    TopKResult::merge_pairs(pairs, k)
}

/// Serve every (query, tier) pair concurrently and collect the answers
/// in submission order, asserting each response echoes its tier.
fn serve_tiered_concurrently(
    backend: Arc<dyn TopKBackend>,
    csr: &Csr,
    shards: usize,
    policy: BatchPolicy,
    work: &[(DenseVector, QueryTier)],
    k: usize,
) -> Vec<TopKResult> {
    let service = TopKService::builder(backend)
        .shards(shards)
        .batch_policy(policy)
        .build(csr)
        .expect("service builds");
    let answers = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = work
            .iter()
            .map(|(x, tier)| {
                scope.spawn(move || {
                    let served = service.query_tiered(x.clone(), k, *tier).expect("served");
                    assert_eq!(served.tier, *tier, "response must echo its tier");
                    served.topk
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect::<Vec<_>>()
    });
    let metrics = service.shutdown();
    assert_eq!(metrics.served, work.len() as u64);
    assert_eq!(metrics.failed + metrics.shed, 0);
    answers
}

/// A matrix engineered for score collisions: every row is one of a few
/// repeated patterns, so whole groups of rows tie exactly and the
/// truncation boundary almost always lands inside a tie group. The
/// deterministic tie break (score desc, then row id asc) is what makes
/// the sharded merge reproduce the unsharded ranking.
fn arb_tied_case() -> impl Strategy<Value = (Csr, usize, usize)> {
    (12usize..48, 2usize..5, 1usize..10, 8usize..24).prop_map(|(rows, patterns, k, cols)| {
        let mut triplets = Vec::new();
        for r in 0..rows {
            let p = r % patterns;
            for j in 0..3usize {
                let c = (p * 3 + j) % cols;
                triplets.push((r as u32, c as u32, 0.1 + p as f32 / 10.0));
            }
        }
        let csr = Csr::from_triplets(rows, cols, &triplets).expect("tied matrix builds");
        (csr, k, cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn duplicate_scores_merge_identically_for_any_shard_count(
        (csr, k, cols) in arb_tied_case()
    ) {
        // An all-ones query makes every same-pattern row score exactly
        // equal, so the Top-K cut is decided purely by the tie break.
        let x = DenseVector::from_values(vec![1.0; cols]);
        let k = k.min(csr.num_rows());
        let backend: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
        let reference = direct_reference(backend.as_ref(), &csr, &x, k);
        let max_shards = csr.num_rows().min(4);
        for shards in 1..=max_shards {
            let served = serve_concurrently(
                Arc::clone(&backend),
                &csr,
                shards,
                BatchPolicy::immediate(),
                std::slice::from_ref(&x),
                k,
            );
            prop_assert_eq!(
                &served[0], &reference,
                "tied scores ranked differently at {} shards", shards
            );
            // The sharded direct merge agrees too — the serving layer
            // adds nothing on top of merge_pairs' total order.
            let sharded = sharded_reference(backend.as_ref(), &csr, shards, &x, k);
            prop_assert_eq!(&sharded, &reference, "direct merge at {} shards", shards);
        }
    }

    #[test]
    fn served_equals_direct_for_every_backend_and_layout(
        (csr, queries, k, shards, policy) in arb_case()
    ) {
        let k = k.min(csr.num_rows());
        let policy = policy_from(policy);

        // Exact engines: served == unsharded direct, any shard count.
        for backend in exact_backends() {
            let served = serve_concurrently(
                Arc::clone(&backend), &csr, shards, policy, &queries, k,
            );
            for (x, got) in queries.iter().zip(&served) {
                let full = direct_reference(backend.as_ref(), &csr, x, k);
                prop_assert_eq!(
                    got, &full,
                    "{}: served diverged from the unsharded direct query \
                     ({shards} shards)", backend.name()
                );
            }
        }

        // The staged prune + rescore pipeline, served with both tiers
        // interleaved. The exact tier delegates to the wrapped engine,
        // so it must equal the unsharded exact reference at any shard
        // count; the pruned tier's shard layout is part of the
        // approximation (like the accelerator's core partitions), so it
        // must equal the per-shard tiered reference bit-for-bit — and
        // the direct unsharded staged answer at one shard.
        let inner: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
        let staged: Arc<dyn TopKBackend> = Arc::new(
            PrunedBackend::new(Arc::clone(&inner), PruneBits::Eight, 3)
                .expect("factor 3 is valid"),
        );
        let pruned_tier = QueryTier::Pruned { shortlist_factor: 3 };
        let work: Vec<(DenseVector, QueryTier)> = queries
            .iter()
            .flat_map(|x| [(x.clone(), QueryTier::Exact), (x.clone(), pruned_tier)])
            .collect();
        let served = serve_tiered_concurrently(
            Arc::clone(&staged), &csr, shards, policy, &work, k,
        );
        for ((x, tier), got) in work.iter().zip(&served) {
            match tier {
                QueryTier::Exact => {
                    let full = direct_reference(inner.as_ref(), &csr, x, k);
                    prop_assert_eq!(
                        got, &full,
                        "staged pipeline: exact tier diverged from the \
                         unsharded exact query ({shards} shards)"
                    );
                }
                QueryTier::Pruned { .. } => {
                    let reference =
                        sharded_tiered_reference(staged.as_ref(), &csr, shards, x, k, *tier);
                    prop_assert_eq!(
                        got, &reference,
                        "staged pipeline: pruned tier diverged from the \
                         per-shard tiered reference ({shards} shards)"
                    );
                    if shards == 1 {
                        let prepared = staged.prepare(&csr).expect("prepare");
                        let batch = QueryBatch::new(vec![x.clone()]).expect("one-query batch");
                        let direct = staged
                            .query_batch_tiered(&prepared, &batch, k, *tier)
                            .expect("direct staged query");
                        prop_assert_eq!(
                            got, &direct[0].topk,
                            "pruned tier at 1 shard must equal the direct staged query"
                        );
                    }
                }
            }
        }

        // The approximate accelerator: served == per-shard direct merge
        // on the identical layout (and == unsharded when shards = 1).
        let fpga = accelerator();
        let served = serve_concurrently(Arc::clone(&fpga), &csr, shards, policy, &queries, k);
        for (x, got) in queries.iter().zip(&served) {
            let reference = sharded_reference(fpga.as_ref(), &csr, shards, x, k);
            prop_assert_eq!(
                got, &reference,
                "accelerator: served diverged from the per-shard direct \
                 reference ({shards} shards)"
            );
            if shards == 1 {
                let full = direct_reference(fpga.as_ref(), &csr, x, k);
                prop_assert_eq!(got, &full, "accelerator at 1 shard must equal direct");
            }
        }
    }
}
