//! Correctness properties of the staged two-phase pipeline
//! ([`PrunedBackend`]): the low-bit prune pass may only *narrow* where
//! exact rescoring looks, so
//!
//! 1. **Covering shortlist ⇒ exactness** — whenever `c·k ≥ rows` the
//!    pipeline's answer is element-wise identical to the wrapped exact
//!    backend (the shortlist covers every row, so nothing is pruned
//!    away — whether by fall-through or by rescoring all rows).
//! 2. **Recall is monotone in `c`** — the factor-`c` shortlist is a
//!    prefix of the factor-`c'` shortlist for `c ≤ c'` under the
//!    engine-wide total order, and every true Top-K member that reaches
//!    the shortlist survives exact rescoring; so recall@k can only grow
//!    with `c`. Checked on the paper's Table III left-skewed `Γ(3, 4/3)`
//!    synthetics.

use std::sync::Arc;

use proptest::prelude::*;
use tkspmv::backend::TopKBackend;
use tkspmv::PrunedBackend;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_eval::metrics::precision_at_k;
use tkspmv_fixed::PruneBits;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::{Csr, DenseVector};

/// A random matrix, a few query vectors, and a `k`.
fn arb_case() -> impl Strategy<Value = (Csr, Vec<DenseVector>, usize)> {
    (24usize..60, 8usize..48, 1usize..9).prop_flat_map(|(rows, cols, k)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..150)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 13 % 89) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let queries = proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, cols..=cols).prop_map(DenseVector::from_values),
            1..5,
        );
        (matrix, queries, Just(k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property 1: `c·k ≥ rows` ⇒ identical to the wrapped backend, at
    /// both companion widths.
    #[test]
    fn covering_shortlist_equals_the_wrapped_exact_backend(
        (csr, queries, k) in arb_case()
    ) {
        let k = k.min(csr.num_rows());
        let inner: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
        let prepared = inner.prepare(&csr).expect("inner prepare");
        // The smallest covering factor, so the test also exercises the
        // boundary where `c·k` just reaches `rows`.
        let factor = csr.num_rows().div_ceil(k);
        for bits in PruneBits::ALL {
            let staged = PrunedBackend::new(Arc::clone(&inner), bits, factor)
                .expect("covering factor is valid");
            let staged_prepared = staged.prepare(&csr).expect("staged prepare");
            for x in &queries {
                let exact = inner.query(&prepared, x, k).expect("exact query");
                let got = staged.query(&staged_prepared, x, k).expect("staged query");
                prop_assert_eq!(
                    &got.topk, &exact.topk,
                    "{}: covering shortlist (c = {}) diverged from exact",
                    staged.name(), factor
                );
            }
        }
    }
}

/// Property 2 on the paper's workload shape: recall@k never drops when
/// the shortlist factor grows, and reaches 1.0 once `c·k` covers the
/// collection.
#[test]
fn recall_is_monotone_in_the_shortlist_factor_on_table3_synthetics() {
    let csr = SyntheticConfig {
        num_rows: 2_000,
        num_cols: 128,
        avg_nnz_per_row: 12,
        distribution: NnzDistribution::table3_gamma(),
        seed: 31,
    }
    .generate();
    let k = 20;
    let inner: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
    let prepared = inner.prepare(&csr).expect("inner prepare");

    for bits in PruneBits::ALL {
        for seed in [1u64, 2, 3, 4] {
            let x = query_vector(128, seed);
            let truth = inner.query(&prepared, &x, k).expect("exact query");
            let mut last = 0.0f64;
            // 100·20 = 2000 covers the collection, closing the sweep at
            // recall exactly 1.
            for factor in [1usize, 2, 4, 8, 16, 100] {
                let staged =
                    PrunedBackend::new(Arc::clone(&inner), bits, factor).expect("factor is valid");
                let sp = staged.prepare(&csr).expect("staged prepare");
                let got = staged.query(&sp, &x, k).expect("staged query");
                let recall = precision_at_k(&got.topk.indices(), &truth.topk.indices());
                assert!(
                    recall >= last,
                    "{bits}: recall dropped from {last:.3} to {recall:.3} at c = {factor}"
                );
                last = recall;
            }
            assert_eq!(last, 1.0, "{bits}: covering factor must reach full recall");
        }
    }
}
