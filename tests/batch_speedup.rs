//! Release-mode smoke guard for the matrix-major batch engine: one
//! B = 32 `query_batch` must be decisively faster than 32 sequential
//! `query` calls on a non-trivial stream. Not a benchmark — the full
//! sweep lives in `benches/batch_query.rs` — just the cheapest
//! assertion that the decode-once amortisation has not regressed into
//! a query-major loop.
//!
//! Ignored by default because wall-clock comparison is meaningless in
//! debug builds and on loaded machines; CI runs it explicitly with
//! `cargo test --release --test batch_speedup -- --ignored`.

use std::time::Instant;

use tkspmv::backend::{QueryBatch, TopKBackend};
use tkspmv::Accelerator;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};

const B: usize = 32;
const DIM: usize = 1024;
const K: usize = 100;

#[test]
#[ignore = "wall-clock smoke check; run explicitly (CI does) in release mode"]
fn batched_32_beats_32_sequential_calls() {
    // Big enough that decode dominates dispatch, small enough to stay
    // a smoke test (~6k packets).
    let collection = SyntheticConfig {
        num_rows: 5_000,
        num_cols: DIM,
        avg_nnz_per_row: 20,
        distribution: NnzDistribution::table3_gamma(),
        seed: 7,
    }
    .generate();
    let backend: Box<dyn TopKBackend> = Box::new(
        Accelerator::builder()
            .cores(32)
            .k(8)
            .build()
            .expect("paper-style design builds"),
    );
    let prepared = backend.prepare(&collection).expect("prepare succeeds");
    let queries: Vec<_> = (0..B as u64).map(|s| query_vector(DIM, s)).collect();
    let batch = QueryBatch::new(queries.clone()).expect("non-empty batch");

    // Warm both paths (thread pools, lazy buffers) before timing.
    backend.query(&prepared, &queries[0], K).expect("warm");
    backend.query_batch(&prepared, &batch, K).expect("warm");

    let started = Instant::now();
    for x in &queries {
        backend.query(&prepared, x, K).expect("sequential query");
    }
    let sequential = started.elapsed();

    let started = Instant::now();
    let results = backend.query_batch(&prepared, &batch, K).expect("batched");
    let batched = started.elapsed();
    assert_eq!(results.len(), B);

    // The bench shows ~6x at B = 32; asserting a bare win (with a small
    // noise margin) keeps this robust on slow shared CI runners while
    // still catching any fallback to per-query decoding.
    assert!(
        batched.as_secs_f64() < sequential.as_secs_f64() * 0.8,
        "B={B} batch ({batched:?}) not faster than {B} sequential calls ({sequential:?})"
    );
}
