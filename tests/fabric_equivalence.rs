//! Property tests of the distributed fabric's answer fidelity: for any
//! matrix split across 1–4 in-process nodes, a query routed through the
//! fan-out `Router` must be element-wise identical to a single
//! unsharded `CpuTopK` answering the whole matrix directly.
//!
//! The fabric adds three layers that could each corrupt an answer —
//! the wire encoding (scores cross as `f64::to_bits`), the per-shard
//! globalization (`start_row` offsets), and the router merge
//! (`merge_pairs_dedup` under the engine total order). Bit-identity
//! against the direct reference pins all three at once.
//!
//! Two tiers are exercised:
//!
//! - [`QueryTier::Exact`]: lossless by construction, any shard count.
//! - [`QueryTier::Pruned`] with a *covering* shortlist factor
//!   (`c·k ≥` every shard's rows): the documented exact fall-through
//!   makes the pruned tier lossless too, so routed-pruned must also
//!   equal the unsharded exact reference — the property that lets a
//!   fleet serve `--tier pruned` without per-deployment baselines.
//!
//! A deterministic delta test rides along: rows appended through the
//! router must score identically to a reference rebuilt with
//! `Csr::append_rows`, before *and* after `compact_all` epoch-swaps the
//! fold in.

use std::sync::Arc;

use proptest::prelude::*;
use tkspmv::backend::{QueryTier, TopKBackend};
use tkspmv::{PrunedBackend, TopKResult};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_fabric::{DeltaCollection, NodeServer, Router, RouterConfig, ShardSpec};
use tkspmv_fixed::PruneBits;
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::{Csr, DenseVector};

/// A covering shortlist factor: `c·k ≥ rows` for every matrix this
/// suite generates (rows < 64, k ≥ 1), so the prune pass falls through
/// to exact and routed-pruned answers are reference-comparable.
const COVERING_FACTOR: usize = 64;

/// One in-process node per partition, each a full serving stack behind
/// a real TCP port: engine, micro-batcher, delta shard, wire loop.
fn spawn_fleet(csr: &Csr, parts: usize, pruned: bool) -> (Vec<NodeServer>, Vec<ShardSpec>) {
    let mut nodes = Vec::with_capacity(parts);
    let mut specs = Vec::with_capacity(parts);
    for (first_row, shard) in csr.partition_rows(parts) {
        let exact: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(1));
        let backend: Arc<dyn TopKBackend> = if pruned {
            Arc::new(
                PrunedBackend::new(exact, PruneBits::Eight, COVERING_FACTOR)
                    .expect("covering factor is valid"),
            )
        } else {
            exact
        };
        let service = TopKService::builder(backend)
            .batch_policy(BatchPolicy::immediate())
            .build(&shard)
            .expect("shard service builds");
        let collection = Arc::new(DeltaCollection::new(service, shard, first_row));
        let node = NodeServer::spawn(collection, "127.0.0.1:0").expect("node binds");
        specs.push(ShardSpec::single(node.local_addr().to_string()));
        nodes.push(node);
    }
    (nodes, specs)
}

fn connect(specs: Vec<ShardSpec>) -> Router {
    Router::connect(
        specs,
        RouterConfig {
            deadline: std::time::Duration::from_secs(10),
            ..RouterConfig::default()
        },
    )
    .expect("router connects")
}

/// Direct unsharded reference: one `CpuTopK` over the whole matrix.
fn direct_reference(csr: &Csr, x: &DenseVector, k: usize) -> TopKResult {
    let backend = CpuTopK::new(1);
    let prepared = backend.prepare(csr).expect("prepare");
    backend.query(&prepared, x, k).expect("query").topk
}

/// A random matrix (enough rows for 4 shards), a few query vectors, a
/// `k`, and a shard count.
fn arb_case() -> impl Strategy<Value = (Csr, Vec<DenseVector>, usize, usize)> {
    (24usize..60, 8usize..32, 1usize..9, 1usize..5).prop_flat_map(|(rows, cols, k, parts)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..120)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 17 % 83) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let queries = proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, cols..=cols).prop_map(DenseVector::from_values),
            1..5,
        );
        (matrix, queries, Just(k), Just(parts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn routed_exact_equals_unsharded((csr, queries, k, parts) in arb_case()) {
        let k = k.min(csr.num_rows());
        let (nodes, specs) = spawn_fleet(&csr, parts, false);
        let router = connect(specs);
        for x in &queries {
            let reference = direct_reference(&csr, x, k);
            let routed = router
                .query(x.as_slice(), k, QueryTier::Exact)
                .expect("routed query");
            prop_assert!(routed.coverage.is_complete());
            prop_assert_eq!(
                routed.topk.entries(), reference.entries(),
                "routed exact diverged from the unsharded reference \
                 ({} shards)", parts
            );
        }
        for node in nodes {
            node.shutdown();
        }
    }

    #[test]
    fn routed_pruned_with_covering_factor_equals_unsharded(
        (csr, queries, k, parts) in arb_case()
    ) {
        let k = k.min(csr.num_rows());
        let (nodes, specs) = spawn_fleet(&csr, parts, true);
        let router = connect(specs);
        let tier = QueryTier::Pruned { shortlist_factor: COVERING_FACTOR };
        for x in &queries {
            let reference = direct_reference(&csr, x, k);
            let routed = router
                .query(x.as_slice(), k, tier)
                .expect("routed pruned query");
            prop_assert!(routed.coverage.is_complete());
            prop_assert_eq!(
                routed.topk.entries(), reference.entries(),
                "routed pruned (covering c = {}) diverged from the \
                 unsharded exact reference ({} shards)", COVERING_FACTOR, parts
            );
        }
        for node in nodes {
            node.shutdown();
        }
    }
}

/// Rows appended through the router score identically to a reference
/// whose matrix was rebuilt with `Csr::append_rows` — while still in
/// the delta shard, and after compaction folds them into the base.
#[test]
fn routed_append_matches_rebuilt_reference_across_compaction() {
    let rows = 30;
    let cols = 16;
    let k = 6;
    let triplets: Vec<(u32, u32, f32)> = (0..rows)
        .flat_map(|r| {
            (0..3).map(move |j| {
                let c = (r * 5 + j * 7) % cols;
                (r as u32, c as u32, 0.05 + ((r * 3 + j) % 19) as f32 / 20.0)
            })
        })
        .collect();
    let csr = Csr::from_triplets(rows, cols, &triplets).expect("valid");
    let appended: Vec<(Vec<u32>, Vec<f32>)> = vec![
        (vec![0, 4, 9], vec![0.9, 0.8, 0.7]),
        (vec![2, 15], vec![1.5, 0.1]),
        (vec![7], vec![2.0]),
    ];
    let grown = csr.append_rows(&appended).expect("reference grows");

    let (nodes, specs) = spawn_fleet(&csr, 3, false);
    let router = connect(specs);
    let ids = router.append(&appended).expect("routed append");
    // Appends land on the tail shard, so global ids continue the
    // fleet's row space exactly where the base matrix ends.
    assert_eq!(ids, vec![30, 31, 32]);

    let queries: Vec<DenseVector> = (0..4)
        .map(|q| {
            DenseVector::from_values(
                (0..cols)
                    .map(|c| ((c * 13 + q * 29) % 31) as f32 / 31.0)
                    .collect(),
            )
        })
        .collect();

    // Visible immediately, straight from the delta shard.
    for x in &queries {
        let reference = direct_reference(&grown, x, k);
        let routed = router
            .query(x.as_slice(), k, QueryTier::Exact)
            .expect("routed query over delta");
        assert_eq!(
            routed.topk.entries(),
            reference.entries(),
            "delta-served answer diverged from the rebuilt reference"
        );
    }

    // Folding the delta must change nothing about the answers.
    let per_shard = router.compact_all().expect("compaction");
    let folded: u64 = per_shard.iter().map(|&(_, n)| n).sum();
    assert_eq!(folded, appended.len() as u64);
    for x in &queries {
        let reference = direct_reference(&grown, x, k);
        let routed = router
            .query(x.as_slice(), k, QueryTier::Exact)
            .expect("routed query after compaction");
        assert_eq!(
            routed.topk.entries(),
            reference.entries(),
            "post-compaction answer diverged from the rebuilt reference"
        );
    }
    for node in nodes {
        node.shutdown();
    }
}
