//! Property tests of the `TopKBackend` batched-query contract: for any
//! matrix, any batch and any K, `query_batch` must return exactly what
//! N sequential `query` calls return — for every backend (accelerator,
//! CPU baseline, GPU model). Batching may only change performance,
//! never answers.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tkspmv::backend::{QueryBatch, TopKBackend};
use tkspmv::{
    quantize_vector, run_core, run_core_batch_with_scratch, Accelerator, BatchScratch, Fidelity,
};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_baselines::gpu::{GpuModel, GpuPrecision, GpuTopK};
use tkspmv_fixed::{SpmvScalar, F32, Q1_19};
use tkspmv_sparse::{BsCsr, Csr, DenseVector, PacketLayout};

/// All three engine families behind the unified trait. The accelerator
/// uses few cores so tiny matrices still exercise multiple partitions,
/// and k = 8 per core so any K in 1..=8 is coverable by one partition.
fn all_backends() -> Vec<Box<dyn TopKBackend>> {
    vec![
        Box::new(
            Accelerator::builder()
                .cores(4)
                .k(8)
                .build()
                .expect("small design builds"),
        ),
        Box::new(CpuTopK::new(2)),
        Box::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F32)),
        Box::new(GpuTopK::new(GpuModel::tesla_p100(), GpuPrecision::F16).with_zero_cost_sort()),
    ]
}

/// A random matrix, a random batch of queries of matching dimension,
/// and a K every backend can serve.
fn arb_case() -> impl Strategy<Value = (Csr, Vec<DenseVector>, usize)> {
    (2usize..40, 4usize..96, 1usize..9).prop_flat_map(|(rows, cols, k)| {
        let matrix = proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 1..120)
            .prop_map(move |coords| {
                let triplets: Vec<(u32, u32, f32)> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, ((i * 13 % 89) + 1) as f32 / 100.0))
                    .collect();
                Csr::from_triplets(rows, cols, &triplets).expect("valid")
            });
        let batch = proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, cols..=cols).prop_map(DenseVector::from_values),
            1..6,
        );
        (matrix, batch, Just(k))
    })
}

/// Engine-level oracle check for one scalar type: the matrix-major
/// batch pass must be bit-identical to N independent single-query runs
/// — top-k pairs (including raw accumulator values, so fixed-point
/// saturation order is covered) and every statistic — under both the
/// hardware-faithful `r`-limited fidelity and the unlimited reference.
fn assert_engine_batch_matches_sequential<S: SpmvScalar>(
    csr: &Csr,
    queries: &[DenseVector],
    k: usize,
    value_bits: u32,
) -> Result<(), TestCaseError> {
    let layout = PacketLayout::solve(csr.num_cols(), value_bits).expect("layout solves");
    let bs = BsCsr::encode::<S>(csr, layout);
    let qs: Vec<Vec<S>> = queries
        .iter()
        .map(|x| quantize_vector::<S>(x.as_slice()))
        .collect();
    for fidelity in [
        Fidelity::Faithful { rows_per_packet: 2 },
        Fidelity::Reference,
    ] {
        let mut scratch = BatchScratch::<S>::new();
        let outputs = run_core_batch_with_scratch(&bs, &qs, k, fidelity, &mut scratch);
        prop_assert_eq!(outputs.len(), qs.len());
        for (x, got) in qs.iter().zip(outputs) {
            let single = run_core::<S>(&bs, x, k, fidelity);
            prop_assert_eq!(
                &single.topk,
                &got.topk,
                "engine batch diverged from sequential ({:?})",
                fidelity
            );
            prop_assert_eq!(single.stats, got.stats);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine contract underneath every backend, for both
    /// fidelities: 20-bit fixed point (saturating accumulation) and the
    /// f32 reference datapath.
    #[test]
    fn engine_batch_is_bit_identical_for_both_fidelities(
        (csr, queries, k) in arb_case()
    ) {
        let k = k.min(csr.num_rows()).max(1);
        assert_engine_batch_matches_sequential::<Q1_19>(&csr, &queries, k, 20)?;
        assert_engine_batch_matches_sequential::<F32>(&csr, &queries, k, 32)?;
    }

    #[test]
    fn query_batch_is_elementwise_identical_to_sequential_queries(
        (csr, queries, k) in arb_case()
    ) {
        let k = k.min(csr.num_rows());
        let batch = QueryBatch::new(queries.clone()).expect("non-empty batch");
        for backend in all_backends() {
            let prepared = backend.prepare(&csr).expect("prepare succeeds");
            let batched = backend
                .query_batch(&prepared, &batch, k)
                .expect("batch runs");
            prop_assert_eq!(batched.len(), queries.len());
            for (x, got) in queries.iter().zip(&batched) {
                let single = backend.query(&prepared, x, k).expect("single runs");
                // The ranking must match bit-for-bit, and so must every
                // non-timing statistic; only measured walltime may vary.
                prop_assert_eq!(
                    &single.topk,
                    &got.topk,
                    "{}: batch diverged from sequential", backend.name()
                );
                prop_assert_eq!(single.perf.nnz, got.perf.nnz);
                prop_assert_eq!(single.perf.timing, got.perf.timing);
            }
        }
    }
}
