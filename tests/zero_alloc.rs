//! Counting-allocator proof that the packet hot path is zero-allocation
//! in steady state: streaming a matrix with 10x the packets through a
//! warm [`CoreScratch`] must cost exactly the same number of heap
//! allocations, i.e. the per-packet decode→accumulate→top-k loop never
//! touches the allocator.
//!
//! Ignored by default because the `#[global_allocator]` swap is global
//! to this test binary (which is why the test lives alone in it); CI
//! runs it explicitly with `cargo test --release --test zero_alloc --
//! --ignored`.

// The one sanctioned unsafe block in the workspace: implementing
// `GlobalAlloc` for the counting allocator requires it. Library code
// stays under `unsafe_code = "forbid"` via the workspace lint table.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tkspmv::{
    quantize_vector, run_core_batch_with_scratch, run_core_with_scratch, BatchScratch, CoreScratch,
    Fidelity,
};
use tkspmv_fixed::Q1_19;
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};
use tkspmv_sparse::{BsCsr, Csr, PacketLayout};

/// Passes every request through to the system allocator, counting
/// allocation calls (`alloc`, `alloc_zeroed`, `realloc`).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn synthetic(rows: usize, seed: u64) -> Csr {
    SyntheticConfig {
        num_rows: rows,
        num_cols: 1024,
        avg_nnz_per_row: 20,
        distribution: NnzDistribution::table3_gamma(),
        seed,
    }
    .generate()
}

/// Allocation calls made while running `f`, minimised over a few trials
/// so an unrelated one-off (e.g. lazy runtime init) cannot inflate it.
fn allocations_during<R>(mut f: impl FnMut() -> R) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        std::hint::black_box(f());
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        min = min.min(after - before);
    }
    min
}

#[test]
#[ignore = "global-allocator accounting; run explicitly (CI does) with --ignored"]
fn steady_state_packet_loop_is_allocation_free() {
    let layout = PacketLayout::solve(1024, 20).unwrap();
    let small = BsCsr::encode::<Q1_19>(&synthetic(1_500, 3), layout);
    let large = BsCsr::encode::<Q1_19>(&synthetic(20_000, 4), layout);
    assert!(
        large.num_packets() >= 10 * small.num_packets(),
        "need a 10x packet-count spread ({} vs {})",
        large.num_packets(),
        small.num_packets()
    );
    let x = quantize_vector::<Q1_19>(query_vector(1024, 9).as_slice());
    let k = 8;

    // Warm the scratch on the large stream so every buffer is at final
    // capacity before anything is measured.
    let mut scratch = CoreScratch::new();
    let warm = run_core_with_scratch::<Q1_19>(&large, &x, k, Fidelity::Reference, &mut scratch);
    assert_eq!(warm.stats.packets, large.num_packets() as u64);

    let small_allocs = allocations_during(|| {
        run_core_with_scratch::<Q1_19>(&small, &x, k, Fidelity::Reference, &mut scratch)
    });
    let large_allocs = allocations_during(|| {
        run_core_with_scratch::<Q1_19>(&large, &x, k, Fidelity::Reference, &mut scratch)
    });

    // Identical counts across a 10x packet spread: zero allocations per
    // packet. The remaining constant is per-*call* (the top-k slab and
    // its sorted extraction), not per-packet.
    assert_eq!(
        small_allocs, large_allocs,
        "hot loop allocates per packet ({small_allocs} vs {large_allocs} allocation calls)"
    );
    assert!(
        large_allocs <= 8,
        "per-call constant unexpectedly large: {large_allocs} allocation calls"
    );
}

/// The observability recording path a request completion touches —
/// counter bump, latency histogram record, span-ring write — must be
/// allocation-free, or the metrics refactor would smuggle allocations
/// back onto the hot path it was built to clean up. (With `obs-trace`
/// off the engine hooks compile to nothing, so the packet-loop tests
/// above already prove the hooks-off hot path gained zero allocations.)
#[test]
#[ignore = "global-allocator accounting; run explicitly (CI does) with --ignored"]
fn obs_recording_path_is_allocation_free() {
    use std::time::Duration;
    use tkspmv_obs::{Registry, SpanRecord, SpanRing, Stage, TraceId};

    let registry = Registry::new();
    let counter = registry.counter("test_requests_total", "test");
    let hist = registry.histogram("test_latency_seconds", "test");
    let ring = SpanRing::new(64);
    let mut rec = SpanRecord::new(TraceId::generate(), 1_000);
    rec.push(Stage::Queue, 0, 100);
    rec.push(Stage::Score, 100, 800);
    rec.push(Stage::Merge, 900, 100);

    // Warm: the first records pin each thread's histogram stripe.
    counter.inc();
    hist.record(Duration::from_micros(250));
    ring.record(&rec);

    let allocs = allocations_during(|| {
        for i in 0..100u32 {
            counter.inc();
            hist.record(Duration::from_micros(u64::from(i) * 37 + 1));
            ring.record(&rec);
        }
    });
    assert_eq!(
        allocs, 0,
        "metrics/span recording allocates on the completion path ({allocs} calls per 100 records)"
    );
}

/// The prune pass's warm scoring loop must be allocation-free: scoring
/// 10x the rows through [`tkspmv_sparse::PruneIndex::score_rows`] into a
/// caller-owned output slice must cost exactly zero allocation calls.
/// (This caught a real bug: `score_rows` used to build a saturated copy
/// of the query per call.)
#[test]
#[ignore = "global-allocator accounting; run explicitly (CI does) with --ignored"]
fn prune_scoring_loop_is_allocation_free() {
    use tkspmv_fixed::PruneBits;
    use tkspmv_sparse::PruneIndex;

    let small = synthetic(1_500, 3);
    let large = synthetic(20_000, 4);
    let small_idx = PruneIndex::build(&small, PruneBits::Eight).unwrap();
    let large_idx = PruneIndex::build(&large, PruneBits::Eight).unwrap();
    let q = small_idx.quantize_query(query_vector(1024, 9).as_slice());
    let mut small_out = vec![0u64; small.num_rows()];
    let mut large_out = vec![0u64; large.num_rows()];

    // Warm once (nothing to warm — score_rows owns no scratch — but
    // keep the measurement shape identical to the other tests).
    small_idx.score_rows(0, &q, &mut small_out);

    let small_allocs = allocations_during(|| small_idx.score_rows(0, &q, &mut small_out));
    let large_allocs = allocations_during(|| large_idx.score_rows(0, &q, &mut large_out));
    assert_eq!(
        (small_allocs, large_allocs),
        (0, 0),
        "prune scoring allocates ({small_allocs} / {large_allocs} calls)"
    );
}

/// A warm connection's frame encode path must reuse its buffer:
/// encoding a response-sized frame into an already-sized `Vec` via
/// [`tkspmv_fabric::wire::encode_frame_into`] costs zero allocations.
#[test]
#[ignore = "global-allocator accounting; run explicitly (CI does) with --ignored"]
fn wire_frame_encode_reuse_is_allocation_free() {
    use tkspmv_fabric::wire::{encode_frame_into, FrameKind};
    use tkspmv_fabric::WIRE_VERSION;

    let body = vec![0xa5u8; 4096];
    let mut buf = Vec::new();
    // Warm: the first encode sizes the buffer.
    encode_frame_into(&mut buf, WIRE_VERSION, FrameKind::TopK, &body);

    let allocs = allocations_during(|| {
        for _ in 0..100 {
            encode_frame_into(&mut buf, WIRE_VERSION, FrameKind::TopK, &body);
        }
        buf.len()
    });
    assert_eq!(
        allocs, 0,
        "warm frame encode allocates ({allocs} calls per 100 frames)"
    );
}

/// The modules these allocation proofs exercise must be declared hot in
/// `crates/check/hot_paths.txt`, so the static lint
/// (`cargo run -p tkspmv_check -- --alloc`) holds the same line on
/// every path the counting allocator can only spot-check.
#[test]
fn exercised_modules_are_declared_hot() {
    let listing = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../crates/check/hot_paths.txt"
    ))
    .expect("hot-path listing exists");
    for module in [
        "crates/core/src/engine/core_model.rs",
        "crates/core/src/topk.rs",
        "crates/sparse/src/packet.rs",
        "crates/sparse/src/prune.rs",
        "crates/obs/src/metrics.rs",
        "crates/obs/src/trace.rs",
    ] {
        assert!(
            listing.lines().any(|l| l.trim() == module),
            "{module} is exercised by tests/zero_alloc.rs but not declared \
             hot in crates/check/hot_paths.txt"
        );
    }
}

#[test]
#[ignore = "global-allocator accounting; run explicitly (CI does) with --ignored"]
fn warm_batch_scratch_is_allocation_free_across_packet_count_and_batch_size() {
    let layout = PacketLayout::solve(1024, 20).unwrap();
    let small = BsCsr::encode::<Q1_19>(&synthetic(1_500, 3), layout);
    let large = BsCsr::encode::<Q1_19>(&synthetic(20_000, 4), layout);
    assert!(
        large.num_packets() >= 10 * small.num_packets(),
        "need a 10x packet-count spread ({} vs {})",
        large.num_packets(),
        small.num_packets()
    );
    let queries: Vec<Vec<Q1_19>> = (0..32)
        .map(|seed| quantize_vector::<Q1_19>(query_vector(1024, seed).as_slice()))
        .collect();
    let k = 8;
    let fidelity = Fidelity::Faithful { rows_per_packet: 2 };

    // Warm on the large stream at the largest batch size, so lanes,
    // outputs and every chunk buffer are at final capacity.
    let mut scratch = BatchScratch::<Q1_19>::new();
    let warm = run_core_batch_with_scratch(&large, &queries, k, fidelity, &mut scratch);
    assert_eq!(warm.len(), 32);

    // Every (stream, B) combination must cost the same number of
    // allocation calls on the warm scratch: zero per packet AND zero
    // per lane — batching amortises decode without touching the heap.
    let mut counts = Vec::new();
    for matrix in [&small, &large] {
        for b in [1usize, 4, 32] {
            let allocs = allocations_during(|| {
                run_core_batch_with_scratch(matrix, &queries[..b], k, fidelity, &mut scratch).len()
            });
            counts.push((matrix.num_packets(), b, allocs));
        }
    }
    let baseline = counts[0].2;
    for &(packets, b, allocs) in &counts {
        assert_eq!(
            allocs, baseline,
            "allocation count depends on stream/batch shape \
             ({packets} packets, B={b}: {allocs} vs {baseline})"
        );
    }
    assert!(
        baseline <= 2,
        "warm batch pass unexpectedly allocates: {baseline} calls"
    );
}
