//! Hostile-frame tests of the fabric wire protocol: a corruption table
//! over every framing failure mode, checked twice — once against the
//! decoder directly (the typed `WireError` the client library reports)
//! and once against a live node over TCP (the node answers corruption
//! with one typed error frame, closes the connection, and keeps serving
//! everyone else).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tkspmv::backend::QueryTier;
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_fabric::wire::{
    encode_frame, read_frame, read_response, Frame, FrameKind, Request, Response, HEADER_LEN,
    MAX_BODY_LEN, WIRE_VERSION,
};
use tkspmv_fabric::{DeltaCollection, NodeClient, NodeServer, RpcError, WireError};
use tkspmv_obs::TraceId;
use tkspmv_serve::TopKService;
use tkspmv_sparse::Csr;

const DEADLINE: Duration = Duration::from_secs(10);

fn diag_node(rows: usize) -> NodeServer {
    let row_ptr = (0..=rows as u64).collect();
    let col_idx = (0..rows as u32).collect();
    let values = (0..rows).map(|r| 1.0 + r as f32).collect();
    let csr = Csr::from_parts(rows, rows, row_ptr, col_idx, values).expect("valid csr");
    let service = TopKService::builder(Arc::new(CpuTopK::new(1)))
        .build(&csr)
        .expect("service");
    let collection = Arc::new(DeltaCollection::new(service, csr, 0));
    NodeServer::spawn(collection, "127.0.0.1:0").expect("bind")
}

fn healthy_query_frame() -> Vec<u8> {
    let (kind, body) = Request::Query {
        x: vec![0.25; 8],
        k: 3,
        tier: QueryTier::Exact,
        trace: TraceId::ZERO,
    }
    .encode();
    encode_frame(kind, &body)
}

/// One corruption-table row: a name, a mutation of a healthy frame,
/// and the typed error the decoder must report.
type CorruptionRow = (&'static str, Vec<u8>, fn(&WireError) -> bool);

fn corruption_table() -> Vec<CorruptionRow> {
    let healthy = healthy_query_frame();
    let mut rows: Vec<CorruptionRow> = Vec::new();

    let mut bad_magic = healthy.clone();
    bad_magic[0] = b'Z';
    rows.push((
        "bad magic",
        bad_magic,
        |e| matches!(e, WireError::BadMagic { found } if found[0] == b'Z'),
    ));

    let mut skew = healthy.clone();
    skew[4..6].copy_from_slice(&9u16.to_le_bytes());
    rows.push(("version skew", skew, |e| {
        matches!(
            e,
            WireError::VersionSkew {
                found: 9,
                expected: WIRE_VERSION
            }
        )
    }));

    let mut unknown_kind = healthy.clone();
    unknown_kind[6] = 0xAB;
    rows.push(("unknown kind", unknown_kind, |e| {
        matches!(e, WireError::UnknownKind { kind: 0xAB })
    }));

    let mut oversized = healthy.clone();
    oversized[8..12].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
    rows.push(("oversized length prefix", oversized, |e| {
        matches!(e, WireError::FrameTooLarge { len, max } if *len == MAX_BODY_LEN + 1 && *max == MAX_BODY_LEN)
    }));

    rows.push((
        "truncated header",
        healthy[..HEADER_LEN - 4].to_vec(),
        |e| matches!(e, WireError::Truncated { .. }),
    ));

    rows.push(("truncated body", healthy[..HEADER_LEN + 3].to_vec(), |e| {
        matches!(e, WireError::Truncated { .. })
    }));

    rows.push((
        "truncated CRC trailer",
        healthy[..healthy.len() - 1].to_vec(),
        |e| matches!(e, WireError::Truncated { .. }),
    ));

    let mut flipped = healthy.clone();
    let mid = HEADER_LEN + (flipped.len() - HEADER_LEN - 4) / 2;
    flipped[mid] ^= 0x40;
    rows.push(("flipped body bit", flipped, |e| {
        matches!(e, WireError::CrcMismatch { .. })
    }));

    let mut flipped_crc = healthy;
    let last = flipped_crc.len() - 1;
    flipped_crc[last] ^= 0x01;
    rows.push(("flipped CRC byte", flipped_crc, |e| {
        matches!(e, WireError::CrcMismatch { .. })
    }));

    rows
}

#[test]
fn every_corruption_is_a_distinct_typed_error() {
    for (name, bytes, check) in corruption_table() {
        match read_frame(&mut bytes.as_slice()) {
            Err(e) => assert!(check(&e), "{name}: wrong error {e:?}"),
            Ok(f) => panic!("{name}: decoded as {f:?}"),
        }
    }
}

#[test]
fn forged_element_counts_fail_typed_without_the_allocation() {
    // Each body declares astronomically more elements than it carries;
    // decoding must fail on the count check, not attempt the reserve.
    let forged: Vec<(&str, FrameKind, Vec<u8>)> = vec![
        (
            "topk entries",
            FrameKind::TopK,
            u32::MAX.to_le_bytes().to_vec(),
        ),
        (
            "append ids",
            FrameKind::AppendOk,
            u32::MAX.to_le_bytes().to_vec(),
        ),
        ("query values", FrameKind::Query, {
            let mut b = vec![];
            b.extend_from_slice(&3u32.to_le_bytes()); // k
            b.push(0); // exact tier
            b.extend_from_slice(&u32::MAX.to_le_bytes()); // dim
            b
        }),
        (
            "append rows",
            FrameKind::Append,
            u32::MAX.to_le_bytes().to_vec(),
        ),
    ];
    for (name, kind, body) in forged {
        let frame = Frame {
            version: WIRE_VERSION,
            kind,
            body,
        };
        let failed = match kind {
            FrameKind::Query | FrameKind::Append => Request::decode(&frame).is_err(),
            _ => Response::decode(&frame).is_err(),
        };
        assert!(failed, "{name}: forged count decoded");
    }
}

#[test]
fn live_node_answers_corruption_typed_and_keeps_serving() {
    let node = diag_node(6);
    for (name, bytes, _) in corruption_table() {
        let mut raw = TcpStream::connect(node.local_addr()).expect("connect");
        raw.set_read_timeout(Some(DEADLINE)).expect("timeout");
        raw.write_all(&bytes).expect("write");
        let truncated = name.starts_with("truncated");
        if truncated {
            // A truncated frame only manifests when the stream closes.
            raw.shutdown(std::net::Shutdown::Write).expect("half-close");
            // The node sees EOF mid-frame and hangs up without a frame —
            // there is no request to answer. Read must not hang.
            match read_response(&mut raw) {
                Err(_) => {}
                Ok(resp) => panic!("{name}: node answered {resp:?} to silence"),
            }
        } else {
            match read_response(&mut raw).unwrap_or_else(|e| panic!("{name}: no answer: {e}")) {
                Response::Error(RpcError::BadRequest { detail }) => {
                    assert!(!detail.is_empty(), "{name}: empty detail");
                }
                other => panic!("{name}: unexpected {other:?}"),
            }
        }
        // The node survives every corrupted connection: a healthy
        // client still gets ranked answers.
        let mut client = NodeClient::connect(node.local_addr(), DEADLINE).expect("connect");
        let mut x = vec![0.0f32; 6];
        x[4] = 1.0;
        let entries = client
            .query(&x, 1, QueryTier::Exact, DEADLINE)
            .unwrap_or_else(|e| panic!("after {name}: healthy query failed: {e}"));
        assert_eq!(entries[0], (4, 5.0), "after {name}");
    }
    node.shutdown();
}

#[test]
fn version_skew_detail_names_both_versions() {
    let node = diag_node(3);
    let mut raw = TcpStream::connect(node.local_addr()).expect("connect");
    raw.set_read_timeout(Some(DEADLINE)).expect("timeout");
    let mut bytes = healthy_query_frame();
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    raw.write_all(&bytes).expect("write");
    match read_response(&mut raw).expect("typed answer") {
        Response::Error(RpcError::BadRequest { detail }) => {
            assert!(detail.contains("v7"), "{detail}");
            assert!(detail.contains("v2"), "{detail}");
        }
        other => panic!("unexpected {other:?}"),
    }
    node.shutdown();
}

#[test]
fn oversized_prefix_is_rejected_without_draining_the_body() {
    // Send only the hostile header — if the node tried to read (or
    // preallocate) the declared 4 GiB body it would block forever; the
    // typed rejection must come back immediately.
    let node = diag_node(3);
    let mut raw = TcpStream::connect(node.local_addr()).expect("connect");
    raw.set_read_timeout(Some(DEADLINE)).expect("timeout");
    let mut header = healthy_query_frame()[..HEADER_LEN].to_vec();
    header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&header).expect("write");
    match read_response(&mut raw).expect("typed answer") {
        Response::Error(RpcError::BadRequest { detail }) => {
            assert!(detail.contains("cap"), "{detail}");
        }
        other => panic!("unexpected {other:?}"),
    }
    node.shutdown();
}
