//! A short multi-threaded soak of the serving subsystem, ending in a
//! shutdown that must drain every admitted request — the CI smoke test
//! for the serving layer.
//!
//! Eight submitter threads hammer a small sharded service with mixed-`k`
//! traffic through a deliberately tight queue, so every serving path is
//! exercised at once: coalesced batches, backpressure shedding, and
//! finally a shutdown racing a just-admitted burst. The invariant under
//! test: **admitted implies answered** — every ticket the service
//! accepted resolves to a successful response, shed requests are
//! accounted as shed, and nothing is dropped on the floor.

use std::sync::Arc;
use std::time::Duration;

use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_serve::{BatchPolicy, ServeError, Ticket, TopKService};
use tkspmv_sparse::gen::{query_vector, NnzDistribution, SyntheticConfig};

const DIM: usize = 96;
const SUBMITTERS: usize = 8;
const REQUESTS_PER_SUBMITTER: usize = 60;

#[test]
fn soak_concurrent_traffic_then_shutdown_drains_everything() {
    let csr = SyntheticConfig {
        num_rows: 1_500,
        num_cols: DIM,
        avg_nnz_per_row: 10,
        distribution: NnzDistribution::Uniform,
        seed: 99,
    }
    .generate();
    let service = TopKService::builder(Arc::new(CpuTopK::new(2)))
        .shards(3)
        .workers_per_shard(2)
        .batch_policy(BatchPolicy::coalescing(8, Duration::from_micros(500)))
        .queue_capacity(32)
        .build(&csr)
        .expect("service builds");

    // Phase 1: concurrent mixed-k soak; keep every accepted ticket.
    let (tickets, shed_seen) = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                scope.spawn(move || {
                    let mut mine: Vec<Ticket> = Vec::new();
                    let mut shed = 0u64;
                    for i in 0..REQUESTS_PER_SUBMITTER {
                        let k = [3, 7, 11][i % 3];
                        let x = query_vector(DIM, (t * 1000 + i) as u64);
                        match service.submit(x, k) {
                            Ok(ticket) => mine.push(ticket),
                            Err(ServeError::QueueFull { .. }) => shed += 1,
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                    }
                    (mine, shed)
                })
            })
            .collect();
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for h in handles {
            let (mine, s) = h.join().expect("submitter thread");
            tickets.extend(mine);
            shed += s;
        }
        (tickets, shed)
    });

    // Phase 2: shut down while the tail of the soak is still in flight.
    let admitted = tickets.len() as u64;
    let metrics = service.shutdown();

    // Shutdown must have drained every admitted request successfully.
    for ticket in tickets {
        let served = ticket
            .wait()
            .expect("admitted request drained to a response");
        assert!(!served.topk.is_empty());
    }
    assert_eq!(metrics.served, admitted, "admitted => answered");
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.shed, shed_seen, "every shed request is accounted");
    assert_eq!(
        admitted + shed_seen,
        (SUBMITTERS * REQUESTS_PER_SUBMITTER) as u64,
        "no request vanished"
    );
    // The coalescing policy must actually have batched under this load.
    assert!(
        metrics
            .batch_size_histogram
            .iter()
            .any(|&(size, _)| size > 1),
        "soak never formed a multi-query batch: {:?}",
        metrics.batch_size_histogram
    );
}
