//! Zero-downtime collection hot swap under live traffic.
//!
//! The serving guarantee under test: `TopKService::swap_collection`
//! loses no admitted request, answers every request from exactly one
//! collection epoch (never a mix), and serves every post-swap admission
//! from the new collection — all without restarting a worker pool.
//!
//! The two collections are built with **disjoint live row spaces** so a
//! response's row ids prove which epoch answered it: collection A only
//! scores rows `0..OLD_ROWS`, collection B leaves those rows empty and
//! only scores `OLD_ROWS..NEW_ROWS`. With an all-positive query, B's
//! live rows always outrank its empty ones, so any answer mixing the
//! two spaces (or serving old rows after the swap) is a bug.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tkspmv::backend::{MatrixShard, PreparedMatrix, TopKBackend};
use tkspmv_baselines::cpu::CpuTopK;
use tkspmv_serve::{BatchPolicy, TopKService};
use tkspmv_sparse::{Csr, DenseVector};

const DIM: usize = 64;
const OLD_ROWS: usize = 60;
const NEW_ROWS: usize = 140;
const CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 40;

/// Collection A: rows `0..OLD_ROWS`, all live.
fn collection_a() -> Csr {
    let triplets: Vec<(u32, u32, f32)> = (0..OLD_ROWS as u32)
        .map(|r| (r, r % DIM as u32, 0.5 + (r % 7) as f32 / 100.0))
        .collect();
    Csr::from_triplets(OLD_ROWS, DIM, &triplets).expect("collection A builds")
}

/// Collection B: rows `0..OLD_ROWS` empty, `OLD_ROWS..NEW_ROWS` live.
fn collection_b() -> Csr {
    let triplets: Vec<(u32, u32, f32)> = (OLD_ROWS as u32..NEW_ROWS as u32)
        .map(|r| (r, r % DIM as u32, 0.5 + (r % 5) as f32 / 100.0))
        .collect();
    Csr::from_triplets(NEW_ROWS, DIM, &triplets).expect("collection B builds")
}

/// Which epoch a response's row ids prove it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AnsweredBy {
    Old,
    New,
}

fn classify(indices: &[u32]) -> AnsweredBy {
    let old = indices.iter().all(|&r| (r as usize) < OLD_ROWS);
    let new = indices
        .iter()
        .all(|&r| (OLD_ROWS..NEW_ROWS).contains(&(r as usize)));
    assert!(
        old ^ new,
        "answer mixes collection epochs (or is empty): {indices:?}"
    );
    if old {
        AnsweredBy::Old
    } else {
        AnsweredBy::New
    }
}

#[test]
fn hot_swap_under_concurrent_soak_is_atomic_and_lossless() {
    let service = TopKService::builder(Arc::new(CpuTopK::new(2)))
        .shards(3)
        .batch_policy(BatchPolicy::coalescing(8, Duration::from_micros(500)))
        .build(&collection_a())
        .expect("service builds");
    assert_eq!(service.epoch(), 0);
    assert_eq!(service.num_rows(), OLD_ROWS);

    let swapped = AtomicBool::new(false);
    let x = DenseVector::from_values(vec![1.0; DIM]);

    std::thread::scope(|scope| {
        let service = &service;
        let swapped = &swapped;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let x = x.clone();
                scope.spawn(move || {
                    let mut outcomes = Vec::with_capacity(QUERIES_PER_CLIENT);
                    for _ in 0..QUERIES_PER_CLIENT {
                        // Read the flag before submitting: a submission
                        // that starts after the swap returned must be
                        // answered by the new collection.
                        let after_swap = swapped.load(Ordering::SeqCst);
                        let served = service
                            .query(x.clone(), 5)
                            .expect("no admitted request may be lost across the swap");
                        let by = classify(&served.topk.indices());
                        outcomes.push((after_swap, by));
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    outcomes
                })
            })
            .collect();

        // Let the soak reach steady state, then swap mid-flight.
        std::thread::sleep(Duration::from_millis(8));
        let new_epoch = service
            .swap_collection(&collection_b())
            .expect("swap succeeds under load");
        assert_eq!(new_epoch, 1);
        swapped.store(true, Ordering::SeqCst);

        let mut saw_old = 0u64;
        let mut saw_new = 0u64;
        for handle in handles {
            for (after_swap, by) in handle.join().expect("client thread") {
                match by {
                    AnsweredBy::Old => saw_old += 1,
                    AnsweredBy::New => saw_new += 1,
                }
                if after_swap {
                    assert_eq!(
                        by,
                        AnsweredBy::New,
                        "a post-swap admission was answered from the old collection"
                    );
                }
            }
        }
        // The soak straddled the swap: both epochs served real traffic.
        assert!(saw_old > 0, "swap landed before any old-epoch answer");
        assert!(saw_new > 0, "no query ever saw the new collection");
    });

    assert_eq!(service.epoch(), 1);
    assert_eq!(service.num_rows(), NEW_ROWS);
    let metrics = service.shutdown();
    assert_eq!(
        metrics.served,
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "every admitted request answered"
    );
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.shed, 0);
    assert_eq!(metrics.swaps, 1);
    assert_eq!(metrics.epoch, 1);
}

#[test]
fn snapshot_cold_start_and_snapshot_swap() {
    // Cold start: prepare collection A's shards once, persist each, and
    // assemble the service purely from loaded snapshots.
    let backend: Arc<dyn TopKBackend> = Arc::new(CpuTopK::new(2));
    let a = collection_a();
    const SHARDS: usize = 2;

    let saved: Vec<(usize, Vec<u8>)> =
        PreparedMatrix::prepare_row_shards(backend.as_ref(), &a, SHARDS)
            .expect("prepare shards")
            .into_iter()
            .map(|shard| {
                let mut buf = Vec::new();
                shard
                    .matrix()
                    .save(backend.as_ref(), &mut buf)
                    .expect("shard saves");
                (shard.start_row(), buf)
            })
            .collect();

    let loaded: Vec<MatrixShard> = saved
        .iter()
        .map(|(start_row, bytes)| {
            let matrix = PreparedMatrix::load(backend.as_ref(), bytes.as_slice())
                .expect("shard snapshot loads");
            MatrixShard::new(*start_row, matrix)
        })
        .collect();

    let service = TopKService::builder(Arc::clone(&backend))
        .batch_policy(BatchPolicy::immediate())
        .build_from_shards(loaded)
        .expect("service cold-starts from snapshots");
    assert_eq!(service.num_shards(), SHARDS);
    assert_eq!(service.num_rows(), OLD_ROWS);

    // Served answers equal the direct unsharded reference.
    let x = DenseVector::from_values(vec![1.0; DIM]);
    let direct = {
        let prepared = backend.prepare(&a).expect("prepare");
        backend.query(&prepared, &x, 5).expect("direct query").topk
    };
    let served = service.query(x.clone(), 5).expect("served");
    assert_eq!(served.topk, direct);

    // Rolling update, also through snapshots: persist B's shards, load,
    // swap. New admissions land in B's row space.
    let b = collection_b();
    let new_shards: Vec<MatrixShard> =
        PreparedMatrix::prepare_row_shards(backend.as_ref(), &b, SHARDS)
            .expect("prepare B shards")
            .into_iter()
            .map(|shard| {
                let mut buf = Vec::new();
                shard
                    .matrix()
                    .save(backend.as_ref(), &mut buf)
                    .expect("B shard saves");
                let matrix =
                    PreparedMatrix::load(backend.as_ref(), buf.as_slice()).expect("B shard loads");
                MatrixShard::new(shard.start_row(), matrix)
            })
            .collect();
    assert_eq!(service.swap_shards(new_shards).expect("swap"), 1);
    let after = service.query(x, 5).expect("served after swap");
    assert_eq!(classify(&after.topk.indices()), AnsweredBy::New);
    let metrics = service.shutdown();
    assert_eq!(metrics.swaps, 1);
    assert_eq!(metrics.served, 2);
}
