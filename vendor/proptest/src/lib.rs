//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the property-test suites link against this minimal
//! re-implementation of the subset of proptest's API they use:
//!
//! - [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`;
//! - integer and float range strategies (`0..10u32`, `0.0f64..1.0`, …);
//! - tuple strategies up to arity 6;
//! - [`collection::vec`] and [`collection::btree_set`];
//! - the [`proptest!`] macro with `#![proptest_config(..)]`;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a deterministic per-test SplitMix64 stream (override the
//! seed with `PROPTEST_SEED`), and failing cases are **not shrunk** —
//! the failing input is printed as-is. Neither difference affects
//! soundness: anything this runner finds is a real counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`Vec`, `BTreeSet`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below_inclusive(self.min as u64, self.max_inclusive as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range {r:?}");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose elements are drawn from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below `target`; bound the retry
            // budget so narrow element domains still terminate.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 32 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` whose elements are drawn from `element`; duplicates
    /// may leave it shorter than the drawn target length.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    let value = $crate::strategy::Strategy::generate(&($($strat,)+), rng);
                    let case = format!("{:?}", value);
                    let ($($pat,)+) = value;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (case, outcome)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case (without panicking the generator loop) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialised to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `prop_assert!` specialised to inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is regenerated, not counted as run)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
