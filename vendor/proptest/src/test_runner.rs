//! Case loop, configuration, and the deterministic RNG.

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases (`prop_assume!`) before the test
    /// errors out as under-constrained.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases with the default reject budget.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Non-panicking outcome of a single case body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` failed); draw another.
    Reject(String),
    /// The property is violated; abort the test.
    Fail(String),
}

/// Deterministic SplitMix64 stream seeding each test's generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `PROPTEST_SEED` when set, otherwise from a hash of
    /// the test name, so every test draws an independent stream and
    /// failures reproduce across runs.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
            Err(_) => fnv1a(name.as_bytes()),
        };
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo))
    }

    /// Uniform draw in `[lo, hi]`, valid for the full `u64` domain.
    pub fn below_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[0, 1]`.
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: draws cases until `config.cases` succeed,
/// panicking on the first failure with the formatted input.
///
/// `case` returns the `Debug` rendering of the drawn input alongside
/// the body's outcome, so failures print their counterexample.
pub fn run<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let (input, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: exceeded {} rejected cases (only {passed}/{} ran); \
                         the strategy rarely satisfies its prop_assume!",
                        config.max_global_rejects, config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed after {passed} passing cases: {msg}\ninput: {input}"
                );
            }
        }
    }
}
