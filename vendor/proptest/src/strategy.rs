//! The [`Strategy`] trait and the primitive strategies (ranges, tuples,
//! `Just`, map/flat-map adaptors).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `generate` draws one
/// value per call from the runner's deterministic RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to build a second strategy, then draws
    /// from that (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate by resampling
    /// (bounded; panics if the predicate rejects 1000 samples in a row).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Adaptor returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Adaptor returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Adaptor returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range {:?}", self);
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end() >= self.start(), "empty range {:?}", self);
                    rng.below_inclusive(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $wide:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range {:?}", self);
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(0, span) as $wide) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end() >= self.start(), "empty range {:?}", self);
                    let span = (*self.end() as $wide - *self.start() as $wide) as u64;
                    (*self.start() as $wide + rng.below_inclusive(0, span) as $wide) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i128, isize => i128);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range {:?}", self);
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // f32 rounding of unit_f64() can land exactly on the
                    // excluded upper bound; fold that back to the start.
                    if v < self.end { v } else { self.start }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64_inclusive() as $t) * (hi - lo)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
