//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so the benches under
//! `crates/bench/benches/` link against this minimal re-implementation
//! of the API subset they use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: one warm-up call sizes an
//! iteration batch targeting ~100 ms, the batch is timed once, and the
//! mean time per iteration (plus throughput, when declared) is printed.
//! There is no statistical analysis, outlier rejection, or HTML report;
//! numbers are indicative, not publication-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting
/// benchmarked work (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Times closures handed to it by the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calibrates an iteration count (~100 ms of work, capped at 10k
    /// iterations), runs it, and records mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_start = Instant::now();
        std_black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }

    fn mean(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters_done as u32
        }
    }
}

/// Top-level harness state; one per process.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to it.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Ends the group (printing happens per-benchmark; this exists for
    /// API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean();
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let per_iter = mean.as_secs_f64();
        let rate = self.throughput.and_then(|t| match t {
            _ if per_iter == 0.0 => None,
            Throughput::Elements(n) => Some(format!("{:.3e} elem/s", n as f64 / per_iter)),
            Throughput::Bytes(n) => Some(format!("{:.3e} B/s", n as f64 / per_iter)),
        });
        match rate {
            Some(rate) => println!("{label:<40} {mean:>12.3?}/iter  {rate}"),
            None => println!("{label:<40} {mean:>12.3?}/iter"),
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
